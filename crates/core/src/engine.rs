//! The discrete-event execution engine.
//!
//! The engine runs one task graph to completion against:
//!
//! - **worker pools** for tool capabilities (frame extraction, STT, object
//!   detection, ...): N workers, each holding an allocation from the
//!   cluster manager and executing one task instance at a time;
//! - **LLM endpoints** for served capabilities (summarisation, embedding,
//!   generation): requests go through `murakkab-llmsim`'s continuous
//!   batcher, so queueing and batching behaviour — the thing the paper's
//!   parallel-summarisation optimisation exploits — is simulated
//!   faithfully;
//! - **external agents** (proprietary APIs): fixed latency, dollar cost,
//!   no local resources.
//!
//! Everything advances on one deterministic event queue. The engine is
//! policy-free: which agent/hardware serves each capability is decided by
//! the caller (the Murakkab runtime or the imperative baseline executor)
//! and passed in as [`RouteSpec`]s.
//!
//! # Hot-path layout
//!
//! [`Engine::new`] interns every route into dense indices: pools and
//! endpoints live in `Vec`s (sorted by agent name, preserving the old
//! `BTreeMap` iteration order), capabilities index a fixed
//! `CompiledRoute` table, and per-task state lives in a `Vec` arena
//! indexed by the dense [`TaskId`]. Event payloads carry those indices
//! — `Event<EngineEvent>` is `Copy` — so the steady-state event loop
//! does no string cloning, no tree walking and no per-event heap
//! allocation.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use murakkab_agents::{AgentLibrary, AgentSpec, Backend, Capability, Work};
use murakkab_cluster::{AllocationId, ClusterManager};
use murakkab_hardware::{catalog, EnergyScope, GpuSku, HardwareTarget};
use murakkab_llmsim::{build_backend, BackendSpec, ModelSpec, Request, ServingBackend};
use murakkab_orchestrator::OrchestratorCost;
use murakkab_sim::{Event, EventQueue, SimDuration, SimError, SimTime, TraceLog};
use murakkab_workflow::{TaskGraph, TaskId};

/// Effective interconnect fraction available to a disaggregated pair
/// whose prefill and decode groups landed on different nodes (the KV
/// transfer rides the datacenter fabric instead of NVLink).
const CROSS_NODE_INTERCONNECT_FACTOR: f64 = 0.25;

/// Number of [`Capability`] variants — the size of the per-capability
/// route and lookahead tables.
const N_CAPS: usize = Capability::ALL.len();

/// How a capability's tasks are executed.
#[derive(Debug, Clone)]
pub enum RouteSpec {
    /// A pool of tool workers (one entry per worker, so hybrid pools can
    /// mix GPU and CPU workers — the paper's GPU+CPU STT configuration).
    Pool {
        /// Library agent name.
        agent: String,
        /// One hardware target per worker to try to allocate (≥1 must
        /// succeed).
        workers: Vec<HardwareTarget>,
    },
    /// A served-LLM endpoint (shared across capabilities that name the
    /// same agent). The deployment shape — colocated replica or a
    /// disaggregated prefill/decode pair — travels with the route; the
    /// engine only ever talks to the backend through the
    /// [`ServingBackend`] trait.
    Endpoint {
        /// Library agent name (must have an `LlmServed` backend).
        agent: String,
        /// Deployment shape consumed by the backend factory.
        backend: BackendSpec,
    },
    /// A third-party API call.
    External {
        /// Library agent name.
        agent: String,
    },
}

impl RouteSpec {
    /// The library agent this route uses.
    pub fn agent(&self) -> &str {
        match self {
            RouteSpec::Pool { agent, .. }
            | RouteSpec::Endpoint { agent, .. }
            | RouteSpec::External { agent } => agent,
        }
    }
}

/// A route compiled to dense indices at engine construction — what the
/// per-event dispatch path consults instead of the `BTreeMap` of
/// [`RouteSpec`]s.
#[derive(Debug, Clone, Copy)]
enum CompiledRoute {
    /// Index into [`Engine::pools`].
    Pool(u32),
    /// Index into [`Engine::endpoints`].
    Endpoint(u32),
    /// External call: latency and dollar cost per call.
    External {
        latency_s: f64,
        cost_per_call_usd: f64,
    },
}

/// Engine-level options.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Release tool pools as soon as the DAG shows no more work for them
    /// (§3.2 workflow-aware cluster management). Off for the baseline.
    pub workflow_aware: bool,
    /// Orchestration LLM cost to charge before any task dispatches, and
    /// the endpoint agent that serves it.
    pub orchestration: Option<(OrchestratorCost, String)>,
    /// Spot preemptions to inject: `(time, node index)` pairs. At each
    /// instant the node dies; running tool tasks on it restart on
    /// surviving workers, and endpoints re-place onto surviving nodes
    /// (the run fails with a checked error if they cannot).
    pub preemptions: Vec<(SimTime, usize)>,
    /// GPU SKU of the cluster (drives endpoint roofline and prices).
    pub gpu_sku: murakkab_hardware::GpuSku,
    /// Speedup factor applied to tool work on pure-GPU targets relative
    /// to the A100 calibration (≈ sqrt of the FLOPS ratio: media tools
    /// are partly memory/IO bound, so they do not scale with raw FLOPS).
    pub gpu_speed_factor: f64,
    /// Record a per-task span into the outcome's [`TraceLog`]. On by
    /// default (closed-loop reporting renders the trace); the fleet
    /// driver turns it off — serve reports never read the trace, and
    /// skipping it removes a `String` clone per completed task from the
    /// hot path.
    pub record_spans: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            workflow_aware: true,
            orchestration: None,
            preemptions: Vec::new(),
            gpu_sku: catalog::a100_80g(),
            gpu_speed_factor: 1.0,
            record_spans: true,
        }
    }
}

impl EngineOptions {
    /// Options for a cluster built from `sku` GPUs.
    pub fn for_gpu(sku: murakkab_hardware::GpuSku) -> Self {
        let factor = (sku.fp16_tflops / catalog::a100_80g().fp16_tflops).sqrt();
        EngineOptions {
            gpu_speed_factor: factor,
            gpu_sku: sku,
            ..EngineOptions::default()
        }
    }
}

/// What a finished run hands back for reporting.
#[derive(Debug)]
pub struct EngineOutcome {
    /// The cluster (with full utilization history) after the run.
    pub cluster: ClusterManager,
    /// Per-task spans by component lane.
    pub trace: TraceLog,
    /// Start of execution (after orchestration).
    pub started: SimTime,
    /// Completion time of the last task.
    pub makespan: SimTime,
    /// Time spent in orchestration (DAG creation) before execution.
    pub orchestration: SimDuration,
    /// GPU energy of held allocations over their hold windows, in Wh
    /// (Murakkab's Table 2 scope).
    pub energy_allocated_wh: f64,
    /// Dollar cost of held allocations plus external calls.
    pub cost_usd: f64,
    /// Tasks completed.
    pub tasks_completed: usize,
    /// Tool pools (re-)provisioned after an idle release (open-loop
    /// autoscale-up events).
    pub pool_scale_ups: u64,
    /// Tool pools released on idleness (autoscale-down events).
    pub pool_scale_downs: u64,
}

impl EngineOutcome {
    /// Whole-fleet GPU energy over the run window (the baseline's Table 2
    /// scope: a rigid deployment strands the entire testbed).
    pub fn energy_fleet_wh(&self) -> f64 {
        self.cluster
            .energy_wh_all(SimTime::ZERO, self.makespan, EnergyScope::GpuOnly)
    }
}

/// Event payloads carry dense indices only, keeping `Event<EngineEvent>`
/// `Copy` — nothing is cloned or freed per processed event.
#[derive(Debug, Clone, Copy)]
enum EngineEvent {
    ToolDone {
        task: TaskId,
        /// Index into [`Engine::pools`].
        pool: u32,
        /// Worker slot within the pool.
        worker: u32,
        gpu_util: f64,
    },
    LlmStep {
        /// Index into [`Engine::endpoints`].
        endpoint: u32,
        generation: u64,
    },
    ExternalDone {
        task: TaskId,
    },
    Preempt {
        node_idx: usize,
    },
}

#[derive(Debug)]
struct Worker {
    alloc: AllocationId,
    target: HardwareTarget,
    busy: bool,
    dead: bool,
}

#[derive(Debug)]
struct Pool {
    /// Library agent name (cluster allocation label; sort key of
    /// [`Engine::pools`]).
    agent: String,
    /// Cost-model snapshot of the agent (taken once at construction —
    /// replaces the per-task-start spec clone of the map-keyed engine).
    spec: AgentSpec,
    caps: Vec<Capability>,
    workers: Vec<Worker>,
    /// The originally requested worker targets — what a re-provision
    /// after an idle release tries to get back (open-loop serving).
    spec_workers: Vec<HardwareTarget>,
    queue: VecDeque<TaskId>,
    released: bool,
}

#[derive(Debug)]
struct EndpointHandle {
    /// Library agent name (sort key of [`Engine::endpoints`]).
    agent: String,
    backend: Box<dyn ServingBackend>,
    /// Deployment shape from the route — consulted when a preemption
    /// forces a re-placement.
    spec_backend: BackendSpec,
    /// One allocation for a colocated replica; `[prefill, decode]` for a
    /// disaggregated pair.
    allocs: Vec<AllocationId>,
    /// In-flight request slots: the request id IS the slot index, so a
    /// completion resolves its task with one bounds-checked load. Freed
    /// slots recycle LIFO; each entry remembers its submission sequence
    /// so preemption resubmits in original submission order.
    pending: Vec<Option<(TaskId, u64)>>,
    free_slots: Vec<u32>,
    /// Monotonic submission counter feeding `pending` entries.
    submit_seq: u64,
    orchestration_req: Option<u64>,
    /// Bumped when the endpoint is re-placed after preemption; stale step
    /// events armed for an earlier incarnation are dropped on arrival.
    generation: u64,
}

impl EndpointHandle {
    /// Claims a pending slot for `task` and returns the request id.
    fn claim_slot(&mut self, task: TaskId) -> u64 {
        let seq = self.submit_seq;
        self.submit_seq += 1;
        let slot = self.free_slots.pop().unwrap_or_else(|| {
            self.pending.push(None);
            (self.pending.len() - 1) as u32
        });
        self.pending[slot as usize] = Some((task, seq));
        u64::from(slot)
    }
}

/// Per-task execution state, indexed by the dense [`TaskId`] — replaces
/// the `completed`/`scheduled` sets and the `indegree`/`started_at`
/// maps of the map-keyed engine.
#[derive(Debug, Clone, Copy)]
struct TaskState {
    capability: Capability,
    /// Remaining-predecessor count; hits zero exactly when the task
    /// becomes schedulable (incremental ready tracking: dispatch is
    /// O(newly ready), not O(graph) — fleet graphs grow to thousands of
    /// tasks).
    indegree: u32,
    scheduled: bool,
    completed: bool,
    started_at: Option<SimTime>,
}

impl Default for TaskState {
    fn default() -> Self {
        TaskState {
            // Placeholder — every arena slot is overwritten from its
            // graph node before use.
            capability: Capability::FrameExtraction,
            indegree: 0,
            scheduled: false,
            completed: false,
            started_at: None,
        }
    }
}

/// The execution engine (one run per instance).
#[derive(Debug)]
pub struct Engine {
    cluster: ClusterManager,
    graph: TaskGraph,
    /// Per-capability compiled routes — the event loop's only routing
    /// structure.
    route_table: [Option<CompiledRoute>; N_CAPS],
    /// Tool pools, sorted by agent name (the old `BTreeMap` iteration
    /// order, which pump/release/report paths depend on).
    pools: Vec<Pool>,
    /// LLM endpoints, sorted by agent name.
    endpoints: Vec<EndpointHandle>,
    options: EngineOptions,
    queue: EventQueue<EngineEvent>,
    /// Dense per-task arena indexed by `TaskId::raw()`.
    tasks: Vec<TaskState>,
    completed_count: usize,
    /// Tasks whose last predecessor completed, awaiting dispatch.
    ready_pending: Vec<TaskId>,
    /// Recycled buffer for draining `ready_pending` without
    /// re-allocating every dispatch.
    ready_scratch: Vec<TaskId>,
    /// Not-yet-completed task counts per capability (incrementally
    /// maintained DAG lookahead for pool release and the rebalancer).
    upcoming: [usize; N_CAPS],
    /// `(created, target)` per allocation, indexed by the dense
    /// [`AllocationId`]; entries stay after release (the settle paths
    /// check liveness against the cluster, as before).
    alloc_meta: Vec<Option<(SimTime, HardwareTarget)>>,
    /// `(task, ttft seconds, tpot seconds, absolute first-token
    /// instant seconds)` of finished endpoint tasks, drained by the
    /// fleet driver for per-class token-latency stats and capture.
    llm_metrics: Vec<(TaskId, f64, f64, f64)>,
    /// Tasks finished since the last [`Engine::clear_completions`],
    /// in completion order — the fleet driver maps these to jobs via a
    /// per-job remaining-task counter.
    completions_log: Vec<TaskId>,
    /// Events popped off the queue so far (the sim-speed denominator).
    events_processed: u64,
    trace: TraceLog,
    /// Latest task-completion instant — the makespan source when span
    /// recording is off.
    last_finish: SimTime,
    energy_ledger: f64,
    cost_ledger: f64,
    orchestrated: bool,
    orch_end: SimTime,
    pool_scale_ups: u64,
    pool_scale_downs: u64,
}

/// On-demand dollar rate of a hardware target under a given GPU SKU
/// (CPU cores billed at the EPYC catalog rate).
pub fn target_hourly_usd(target: &HardwareTarget, gpu: &murakkab_hardware::GpuSku) -> f64 {
    let core = catalog::epyc_7v12().hourly_usd_per_core;
    target.gpu_units() * gpu.hourly_usd + f64::from(target.cpu_cores_used()) * core
}

/// Records `(created, target)` for `alloc` in the dense metadata arena.
fn alloc_meta_set(
    meta: &mut Vec<Option<(SimTime, HardwareTarget)>>,
    alloc: AllocationId,
    created: SimTime,
    target: HardwareTarget,
) {
    let i = alloc.raw() as usize;
    if meta.len() <= i {
        meta.resize(i + 1, None);
    }
    meta[i] = Some((created, target));
}

impl Engine {
    /// Builds an engine: allocates pools and endpoints on `cluster` at
    /// `start`, interning every route into dense indices.
    ///
    /// # Errors
    ///
    /// Fails when a route's agent is unknown, a backend mismatches its
    /// route kind, or the cluster cannot host even one worker / the
    /// endpoint group.
    pub fn new(
        mut cluster: ClusterManager,
        library: &AgentLibrary,
        graph: TaskGraph,
        routes: BTreeMap<Capability, RouteSpec>,
        options: EngineOptions,
        start: SimTime,
    ) -> Result<Self, SimError> {
        let mut pools: BTreeMap<String, Pool> = BTreeMap::new();
        let mut endpoints: BTreeMap<String, EndpointHandle> = BTreeMap::new();
        let mut external: BTreeMap<Capability, (f64, f64)> = BTreeMap::new();
        let mut alloc_meta = Vec::new();

        // Validate that every capability in the graph has a route.
        for node in graph.tasks() {
            if !routes.contains_key(&node.capability) {
                return Err(SimError::InvalidInput(format!(
                    "no route for capability {:?} (task {})",
                    node.capability, node.name
                )));
            }
        }

        // Endpoints first: model deployments are long-lived and sized
        // exactly; elastic tool pools then shrink into whatever remains
        // (partial pools are accepted).
        let ordered: Vec<(&Capability, &RouteSpec)> = routes
            .iter()
            .filter(|(_, r)| matches!(r, RouteSpec::Endpoint { .. }))
            .chain(
                routes
                    .iter()
                    .filter(|(_, r)| !matches!(r, RouteSpec::Endpoint { .. })),
            )
            .collect();
        for (&cap, route) in ordered {
            let spec = library.get(route.agent())?;
            match route {
                RouteSpec::Pool { agent, workers } => {
                    let Backend::Tool(_) = &spec.backend else {
                        return Err(SimError::InvalidInput(format!(
                            "{agent} is not a tool; cannot serve {cap:?} from a pool"
                        )));
                    };
                    if workers.is_empty() {
                        return Err(SimError::InvalidInput(format!(
                            "pool for {agent} has no workers"
                        )));
                    }
                    let pool = pools.entry(agent.clone()).or_insert_with(|| Pool {
                        agent: agent.clone(),
                        spec: spec.clone(),
                        caps: Vec::new(),
                        workers: Vec::new(),
                        spec_workers: workers.clone(),
                        queue: VecDeque::new(),
                        released: false,
                    });
                    pool.caps.push(cap);
                    if pool.workers.is_empty() {
                        for per_worker in workers {
                            match cluster.allocate(start, agent.clone(), *per_worker) {
                                Ok(alloc) => {
                                    alloc_meta_set(&mut alloc_meta, alloc, start, *per_worker);
                                    pool.workers.push(Worker {
                                        alloc,
                                        target: *per_worker,
                                        busy: false,
                                        dead: false,
                                    });
                                }
                                Err(e) => {
                                    if pool.workers.is_empty() {
                                        return Err(e);
                                    }
                                    break; // Partial pool: run with what fits.
                                }
                            }
                        }
                    }
                }
                RouteSpec::Endpoint { agent, backend } => {
                    let Backend::LlmServed { model, .. } = &spec.backend else {
                        return Err(SimError::InvalidInput(format!(
                            "{agent} is not LLM-served; cannot serve {cap:?} from an endpoint"
                        )));
                    };
                    if !endpoints.contains_key(agent) {
                        let (be, allocs) = Self::provision_backend(
                            &mut cluster,
                            agent,
                            model,
                            backend,
                            &options.gpu_sku,
                            start,
                            &mut alloc_meta,
                        )?;
                        endpoints.insert(
                            agent.clone(),
                            EndpointHandle {
                                agent: agent.clone(),
                                backend: be,
                                spec_backend: *backend,
                                allocs,
                                pending: Vec::new(),
                                free_slots: Vec::new(),
                                submit_seq: 0,
                                orchestration_req: None,
                                generation: 0,
                            },
                        );
                    }
                }
                RouteSpec::External { agent } => {
                    let Backend::External {
                        latency_s,
                        cost_per_call_usd,
                    } = &spec.backend
                    else {
                        return Err(SimError::InvalidInput(format!(
                            "{agent} is not external; bad route for {cap:?}"
                        )));
                    };
                    external.insert(cap, (*latency_s, *cost_per_call_usd));
                }
            }
        }

        // Freeze the sorted maps into index arenas and compile the
        // per-capability route table against them.
        let pools: Vec<Pool> = pools.into_values().collect();
        let endpoints: Vec<EndpointHandle> = endpoints.into_values().collect();
        let index_of = |list: &[String], name: &str| -> u32 {
            list.binary_search_by(|a| a.as_str().cmp(name))
                .expect("route agent was provisioned") as u32
        };
        let pool_names: Vec<String> = pools.iter().map(|p| p.agent.clone()).collect();
        let ep_names: Vec<String> = endpoints.iter().map(|h| h.agent.clone()).collect();
        let mut route_table: [Option<CompiledRoute>; N_CAPS] = [None; N_CAPS];
        for (cap, route) in &routes {
            route_table[*cap as usize] = Some(match route {
                RouteSpec::Pool { agent, .. } => CompiledRoute::Pool(index_of(&pool_names, agent)),
                RouteSpec::Endpoint { agent, .. } => {
                    CompiledRoute::Endpoint(index_of(&ep_names, agent))
                }
                RouteSpec::External { .. } => {
                    let (latency_s, cost_per_call_usd) = external[cap];
                    CompiledRoute::External {
                        latency_s,
                        cost_per_call_usd,
                    }
                }
            });
        }

        let mut tasks = vec![TaskState::default(); graph.len()];
        let mut ready_pending = Vec::new();
        let mut upcoming = [0usize; N_CAPS];
        for node in graph.tasks() {
            let preds = graph.predecessors(node.id).count() as u32;
            tasks[node.id.raw() as usize] = TaskState {
                capability: node.capability,
                indegree: preds,
                scheduled: false,
                completed: false,
                started_at: None,
            };
            if preds == 0 {
                ready_pending.push(node.id);
            }
            upcoming[node.capability as usize] += 1;
        }

        Ok(Engine {
            cluster,
            graph,
            route_table,
            pools,
            endpoints,
            options,
            queue: EventQueue::new(),
            tasks,
            completed_count: 0,
            ready_pending,
            ready_scratch: Vec::new(),
            upcoming,
            alloc_meta,
            llm_metrics: Vec::new(),
            completions_log: Vec::new(),
            events_processed: 0,
            trace: TraceLog::new(),
            last_finish: SimTime::ZERO,
            energy_ledger: 0.0,
            cost_ledger: 0.0,
            orchestrated: false,
            orch_end: start,
            pool_scale_ups: 0,
            pool_scale_downs: 0,
        })
    }

    /// Runs the graph to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidState`] if the run deadlocks (graph
    /// incomplete with no pending events) — a routing/scheduling bug.
    pub fn run(mut self, start: SimTime) -> Result<EngineOutcome, SimError> {
        self.start(start)?;
        while self.step()?.is_some() {}
        self.finish(start)
    }

    /// Arms the engine at `start`: schedules injected preemptions, charges
    /// orchestration (DAG creation) before any task dispatches, and
    /// dispatches whatever is already ready. Drive the armed engine with
    /// [`Engine::step`] (or let [`Engine::run`] do it).
    ///
    /// # Errors
    ///
    /// Propagates endpoint/cluster errors.
    pub fn start(&mut self, start: SimTime) -> Result<(), SimError> {
        let now = start;
        self.orch_end = start;

        // Disjoint field borrows: options is read-only while the queue
        // fills — no clone of the preemption schedule.
        for &(at, node_idx) in &self.options.preemptions {
            self.queue
                .schedule(at.max(start), EngineEvent::Preempt { node_idx });
        }

        if let Some((cost, agent)) = &self.options.orchestration {
            let (prompt, output) = (cost.prompt_tokens, cost.output_tokens);
            let ei = self
                .endpoints
                .iter()
                .position(|h| h.agent == *agent)
                .ok_or_else(|| SimError::not_found("orchestrator endpoint", agent.clone()))?;
            let req = Request::new(u64::MAX, prompt.max(1), output.max(1));
            let armed = {
                let h = &mut self.endpoints[ei];
                h.orchestration_req = Some(req.id);
                h.backend.on_submit(req, now)?.map(|t| (t, h.generation))
            };
            if let Some((t, generation)) = armed {
                self.queue.schedule(
                    t,
                    EngineEvent::LlmStep {
                        endpoint: ei as u32,
                        generation,
                    },
                );
            }
            self.sync_endpoint_activity(now, ei)?;
        } else {
            self.orchestrated = true;
            self.dispatch(now)?;
        }
        Ok(())
    }

    /// Processes the next pending event and returns its instant, or `None`
    /// when the queue is empty. The open-loop fleet driver interleaves
    /// these steps with request admissions.
    ///
    /// # Errors
    ///
    /// Propagates endpoint/cluster errors.
    pub fn step(&mut self) -> Result<Option<SimTime>, SimError> {
        let Some(ev) = self.queue.pop() else {
            return Ok(None);
        };
        self.process(ev).map(Some)
    }

    /// Applies one popped event.
    fn process(&mut self, ev: Event<EngineEvent>) -> Result<SimTime, SimError> {
        self.events_processed += 1;
        let now = ev.at;
        match ev.payload {
            EngineEvent::ToolDone {
                task,
                pool,
                worker,
                gpu_util,
            } => {
                let p = &mut self.pools[pool as usize];
                let w = &mut p.workers[worker as usize];
                w.busy = false;
                let (alloc, lost) = (w.alloc, w.dead);
                if lost {
                    // The worker died mid-task: the work is lost and
                    // the task goes back to the queue (activity was
                    // zeroed when the node went down).
                    p.queue.push_front(task);
                } else {
                    self.cluster.activity_end(now, alloc, gpu_util)?;
                    self.finish_task(task, now)?;
                }
                self.dispatch(now)?;
            }
            EngineEvent::LlmStep {
                endpoint,
                generation,
            } => {
                let ei = endpoint as usize;
                if self.endpoints[ei].generation != generation {
                    // Armed for an incarnation that died in a
                    // preemption; the replacement has its own
                    // step schedule.
                    return Ok(now);
                }
                let outcome = self.endpoints[ei].backend.on_step(now);
                for c in &outcome.completions {
                    let h = &mut self.endpoints[ei];
                    if h.orchestration_req == Some(c.id) {
                        h.orchestration_req = None;
                        self.trace
                            .record("Orchestrator", "dag-creation", c.submitted, c.finished);
                        self.orch_end = c.finished;
                        self.orchestrated = true;
                        continue;
                    }
                    let slot = c.id as usize;
                    let (task, _) = h.pending[slot]
                        .take()
                        .expect("completion matches a pending task");
                    h.free_slots.push(c.id as u32);
                    self.tasks[task.raw() as usize].started_at = Some(c.started);
                    self.llm_metrics.push((
                        task,
                        c.ttft().as_secs_f64(),
                        c.tpot().as_secs_f64(),
                        c.first_token.as_secs_f64(),
                    ));
                    self.finish_task(task, now)?;
                }
                if let Some(t) = outcome.next_step {
                    self.queue.schedule(
                        t,
                        EngineEvent::LlmStep {
                            endpoint,
                            generation,
                        },
                    );
                }
                self.sync_endpoint_activity(now, ei)?;
                self.dispatch(now)?;
            }
            EngineEvent::ExternalDone { task } => {
                self.finish_task(task, now)?;
                self.dispatch(now)?;
            }
            EngineEvent::Preempt { node_idx } => {
                self.handle_preemption(now, node_idx)?;
                self.dispatch(now)?;
            }
        }
        Ok(now)
    }

    /// Settles all ledgers after the queue has drained and hands back the
    /// outcome.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidState`] if the run deadlocked (graph
    /// incomplete with no pending events) — a routing/scheduling bug.
    pub fn finish(mut self, start: SimTime) -> Result<EngineOutcome, SimError> {
        let orch_end = self.orch_end;
        if self.completed_count != self.graph.len() {
            let stuck: Vec<String> = self
                .graph
                .tasks()
                .filter(|t| !self.tasks[t.id.raw() as usize].completed)
                .take(5)
                .map(|t| t.name.clone())
                .collect();
            return Err(SimError::InvalidState(format!(
                "engine deadlock: {}/{} tasks done; stuck: {stuck:?}",
                self.completed_count,
                self.graph.len()
            )));
        }

        // The makespan is the last task completion — not `now`, which a
        // trailing injected event (e.g. a post-completion preemption) may
        // have advanced past it. With span recording off the trace is
        // empty, so the incrementally tracked completion instant stands
        // in for it.
        let makespan = self.trace.makespan().max(self.last_finish).max(orch_end);
        // Release everything still held, settling energy and cost.
        for i in 0..self.alloc_meta.len() {
            if self.alloc_meta[i].is_none() {
                continue;
            }
            let alloc = AllocationId::from_raw(i as u64);
            if self.cluster.allocation(alloc).is_ok() {
                self.settle_allocation(alloc, makespan)?;
            }
        }

        Ok(EngineOutcome {
            cluster: self.cluster,
            trace: self.trace,
            started: orch_end,
            makespan,
            orchestration: orch_end.saturating_duration_since(start),
            energy_allocated_wh: self.energy_ledger,
            cost_usd: self.cost_ledger,
            tasks_completed: self.completed_count,
            pool_scale_ups: self.pool_scale_ups,
            pool_scale_downs: self.pool_scale_downs,
        })
    }

    /// The due time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Processes pending events up to `bound` (`<= bound` when
    /// `inclusive`, `< bound` otherwise) in one batched drain, stopping
    /// early after any event that completes at least one task so the
    /// caller can re-inject queued work at that instant. Returns the
    /// stop instant, or `None` once no pending event falls within the
    /// bound.
    ///
    /// # Errors
    ///
    /// Propagates endpoint/cluster errors.
    pub fn step_while(
        &mut self,
        bound: SimTime,
        inclusive: bool,
    ) -> Result<Option<SimTime>, SimError> {
        // `pop_before` fuses the bound check into the pop — one bucket
        // settle per event instead of a peek scan followed by a pop.
        loop {
            let Some(ev) = self.queue.pop_before(bound, inclusive) else {
                return Ok(None);
            };
            let before = self.completions_log.len();
            let now = self.process(ev)?;
            if self.completions_log.len() > before {
                return Ok(Some(now));
            }
        }
    }

    /// Tasks finished since the last [`Engine::clear_completions`], in
    /// completion order. Paired with `clear_completions` instead of a
    /// draining take so the log's buffer is reused across epochs — the
    /// fleet's harvest path stays allocation-free in steady state.
    pub fn completions(&self) -> &[TaskId] {
        &self.completions_log
    }

    /// Resets the completion log, keeping its capacity.
    pub fn clear_completions(&mut self) {
        self.completions_log.clear();
    }

    /// Events popped off this engine's queue so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Total tasks in the (possibly growing) graph.
    pub fn task_count(&self) -> usize {
        self.graph.len()
    }

    /// Not-yet-completed task counts per capability (the DAG lookahead the
    /// rebalancer consumes; maintained incrementally, materialized to a
    /// map only at this advisory-cadence call).
    pub fn upcoming_by_capability(&self) -> BTreeMap<Capability, usize> {
        Capability::ALL
            .iter()
            .filter(|&&c| self.upcoming[c as usize] > 0)
            .map(|&c| (c, self.upcoming[c as usize]))
            .collect()
    }

    /// Live cluster stats at `now`.
    pub fn cluster_stats(&self, now: SimTime) -> murakkab_cluster::ResourceStats {
        self.cluster.stats(now)
    }

    /// Per-endpoint `(agent, gpus, queued + running requests)` snapshots.
    pub fn endpoint_loads(&self) -> Vec<(String, u32, usize)> {
        self.endpoints
            .iter()
            .map(|h| (h.agent.clone(), h.backend.gpu_count(), h.backend.load()))
            .collect()
    }

    /// The hottest admission-gating KV pool across this engine's
    /// endpoints, as an occupancy fraction — the fleet router's KV-aware
    /// tiebreak signal.
    pub fn max_kv_occupancy(&self) -> f64 {
        self.endpoints
            .iter()
            .map(|h| h.backend.kv_occupancy())
            .fold(0.0, f64::max)
    }

    /// The accumulated `(task, ttft seconds, tpot seconds, absolute
    /// first-token instant seconds)` token-latency samples of finished
    /// endpoint tasks since the last [`Engine::clear_llm_metrics`].
    pub fn llm_metrics(&self) -> &[(TaskId, f64, f64, f64)] {
        &self.llm_metrics
    }

    /// Resets the token-latency sample log, keeping its capacity.
    pub fn clear_llm_metrics(&mut self) {
        self.llm_metrics.clear();
    }

    /// Aggregate per-phase serving effort across all endpoints:
    /// `(prefill busy GPU-seconds, prefill GPUs, decode busy
    /// GPU-seconds, decode GPUs)`. Colocated replicas count their group
    /// under both phases, split by where iteration time actually went.
    pub fn endpoint_phase_stats(&self) -> (f64, f64, f64, f64) {
        let mut out = (0.0, 0.0, 0.0, 0.0);
        for h in &self.endpoints {
            let (pb, db) = h.backend.phase_busy();
            let (pg, dg) = h.backend.phase_gpus();
            out.0 += pb.as_secs_f64() * f64::from(pg);
            out.1 += f64::from(pg);
            out.2 += db.as_secs_f64() * f64::from(dg);
            out.3 += f64::from(dg);
        }
        out
    }

    /// Per-pool `(agent, capability, GPU units held, queued + running
    /// tasks)` snapshots of live (non-released) pools, one entry per
    /// capability the pool serves — so advisory policies see tool agents
    /// as resident, not just LLM endpoints.
    pub fn pool_views(&self) -> Vec<(String, Capability, f64, usize)> {
        let mut out = Vec::new();
        for pool in &self.pools {
            if pool.released {
                continue;
            }
            let gpus: f64 = pool
                .workers
                .iter()
                .filter(|w| !w.dead)
                .map(|w| w.target.gpu_units())
                .sum();
            let load = pool.queue.len() + pool.workers.iter().filter(|w| w.busy && !w.dead).count();
            for &cap in &pool.caps {
                out.push((pool.agent.clone(), cap, gpus, load));
            }
        }
        out
    }

    /// Admits a workflow's task graph mid-run (open-loop serving): merges
    /// it under `prefix`, re-provisions any tool pools that were released
    /// while idle and are needed again, and dispatches newly ready tasks
    /// at `now`. Returns the old-id → new-id mapping so the caller can
    /// track the job's completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidInput`] if a capability in `sub` has no
    /// route, and [`SimError::ResourceExhausted`] if a required released
    /// pool cannot get any worker back.
    pub fn admit_graph(
        &mut self,
        now: SimTime,
        sub: &TaskGraph,
        prefix: &str,
    ) -> Result<BTreeMap<TaskId, TaskId>, SimError> {
        let mut ids = Vec::with_capacity(sub.len());
        self.admit_graph_into(now, sub, prefix, &mut ids)?;
        Ok(sub.tasks().map(|n| n.id).zip(ids).collect())
    }

    /// [`admit_graph`](Self::admit_graph) without the per-admission map
    /// allocation: the engine-local ids of the admitted tasks are
    /// appended to `out` in `sub`'s node order. The fleet serve loop
    /// reuses one buffer (and one prefix `String`) across every
    /// admission, so steady-state admission allocates only the graph's
    /// own node storage.
    ///
    /// # Errors
    ///
    /// As [`admit_graph`](Self::admit_graph).
    pub fn admit_graph_into(
        &mut self,
        now: SimTime,
        sub: &TaskGraph,
        prefix: &str,
        out: &mut Vec<TaskId>,
    ) -> Result<(), SimError> {
        let mut caps_needed: BTreeSet<Capability> = BTreeSet::new();
        for node in sub.tasks() {
            if self.route_table[node.capability as usize].is_none() {
                return Err(SimError::InvalidInput(format!(
                    "no route for capability {:?} (task {})",
                    node.capability, node.name
                )));
            }
            caps_needed.insert(node.capability);
        }

        // Autoscale-up: bring back released pools the new job needs.
        for pi in 0..self.pools.len() {
            let needed = {
                let pool = &self.pools[pi];
                pool.released && pool.caps.iter().any(|c| caps_needed.contains(c))
            };
            if !needed {
                continue;
            }
            let mut fresh = Vec::new();
            for wi in 0..self.pools[pi].spec_workers.len() {
                let target = self.pools[pi].spec_workers[wi];
                match self
                    .cluster
                    .allocate(now, self.pools[pi].agent.clone(), target)
                {
                    Ok(alloc) => {
                        alloc_meta_set(&mut self.alloc_meta, alloc, now, target);
                        fresh.push(Worker {
                            alloc,
                            target,
                            busy: false,
                            dead: false,
                        });
                    }
                    Err(e) => {
                        if fresh.is_empty() {
                            return Err(e);
                        }
                        break; // Partial pool: serve with what fits.
                    }
                }
            }
            // Reuse idle dead slots (an idle dead worker can have no
            // in-flight ToolDone carrying its index) so the worker list
            // does not grow with every scale cycle of a long-running
            // serve engine.
            let pool = &mut self.pools[pi];
            let mut fresh = fresh.into_iter();
            for w in pool.workers.iter_mut() {
                if w.dead && !w.busy {
                    match fresh.next() {
                        Some(nw) => *w = nw,
                        None => break,
                    }
                }
            }
            pool.workers.extend(fresh);
            pool.released = false;
            self.pool_scale_ups += 1;
        }

        let start = out.len();
        self.graph.absorb_prefixed_into(sub, prefix, out);
        if self.tasks.len() < self.graph.len() {
            self.tasks.resize(self.graph.len(), TaskState::default());
        }
        for &new_id in &out[start..] {
            let preds = self.graph.predecessors(new_id).count() as u32;
            let cap = self.graph.task(new_id)?.capability;
            self.tasks[new_id.raw() as usize] = TaskState {
                capability: cap,
                indegree: preds,
                scheduled: false,
                completed: false,
                started_at: None,
            };
            if preds == 0 {
                self.ready_pending.push(new_id);
            }
            self.upcoming[cap as usize] += 1;
        }
        self.dispatch(now)?;
        Ok(())
    }

    /// Marks a task complete, records its span and advances the
    /// incremental ready/lookahead state.
    fn finish_task(&mut self, task: TaskId, now: SimTime) -> Result<(), SimError> {
        let ti = task.raw() as usize;
        let capability = self.tasks[ti].capability;
        if self.options.record_spans {
            let started = self.tasks[ti].started_at.unwrap_or(now);
            let name = self.graph.task(task)?.name.clone();
            self.trace
                .record(capability.lane_name(), name, started, now);
        }
        if self.tasks[ti].completed {
            return Ok(());
        }
        self.tasks[ti].completed = true;
        self.completed_count += 1;
        if now > self.last_finish {
            self.last_finish = now;
        }
        self.completions_log.push(task);
        let ci = capability as usize;
        self.upcoming[ci] = self.upcoming[ci].saturating_sub(1);
        // Split borrow: walk the graph's successor list while mutating
        // the task arena — no per-finish successor Vec.
        let Engine {
            graph,
            tasks,
            ready_pending,
            ..
        } = self;
        for s in graph.successors(task) {
            let st = &mut tasks[s.raw() as usize];
            st.indegree -= 1;
            if st.indegree == 0 {
                ready_pending.push(s);
            }
        }
        Ok(())
    }

    /// Pushes ready tasks to their routes and pumps pools.
    fn dispatch(&mut self, now: SimTime) -> Result<(), SimError> {
        if !self.orchestrated {
            return Ok(());
        }
        if !self.ready_pending.is_empty() {
            // Ping-pong the two buffers so steady-state dispatch never
            // allocates; ascending id order matches the old
            // `BTreeSet<TaskId>` iteration order.
            let mut ready = std::mem::take(&mut self.ready_scratch);
            std::mem::swap(&mut ready, &mut self.ready_pending);
            ready.sort_unstable();
            for &tid in &ready {
                let ti = tid.raw() as usize;
                if self.tasks[ti].scheduled {
                    continue;
                }
                self.tasks[ti].scheduled = true;
                let route = self.route_table[self.tasks[ti].capability as usize]
                    .expect("routes validated at admission");
                match route {
                    CompiledRoute::Pool(pi) => {
                        self.pools[pi as usize].queue.push_back(tid);
                    }
                    CompiledRoute::Endpoint(ei) => {
                        let (prompt, output) = {
                            let node = self.graph.task(tid)?;
                            let Work::Tokens { prompt, output } = node.work else {
                                return Err(SimError::InvalidInput(format!(
                                    "endpoint task {} carries non-token work {}",
                                    node.name, node.work
                                )));
                            };
                            (prompt, output)
                        };
                        let h = &mut self.endpoints[ei as usize];
                        let req = Request::new(h.claim_slot(tid), prompt, output.max(1));
                        let generation = h.generation;
                        if let Some(t) = h.backend.on_submit(req, now)? {
                            self.queue.schedule(
                                t,
                                EngineEvent::LlmStep {
                                    endpoint: ei,
                                    generation,
                                },
                            );
                        }
                        self.sync_endpoint_activity(now, ei as usize)?;
                    }
                    CompiledRoute::External {
                        latency_s,
                        cost_per_call_usd,
                    } => {
                        self.cost_ledger += cost_per_call_usd;
                        self.tasks[ti].started_at = Some(now);
                        self.queue.schedule(
                            now + SimDuration::from_secs_f64(latency_s),
                            EngineEvent::ExternalDone { task: tid },
                        );
                    }
                }
            }
            ready.clear();
            self.ready_scratch = ready;
        }
        self.pump_pools(now)?;
        if self.options.workflow_aware {
            self.release_idle_pools(now)?;
        }
        Ok(())
    }

    /// Starts queued tasks on free workers.
    fn pump_pools(&mut self, now: SimTime) -> Result<(), SimError> {
        for pi in 0..self.pools.len() {
            loop {
                let (tid, wi, alloc, target) = {
                    let pool = &mut self.pools[pi];
                    if pool.released || pool.queue.is_empty() {
                        break;
                    }
                    let Some(wi) = pool.workers.iter().position(|w| !w.busy && !w.dead) else {
                        break;
                    };
                    let tid = pool.queue.pop_front().expect("checked non-empty");
                    pool.workers[wi].busy = true;
                    (tid, wi, pool.workers[wi].alloc, pool.workers[wi].target)
                };
                let (duration, gpu_util) = {
                    // The cost model lives on the pool's spec snapshot —
                    // no library lookup or spec clone per task start.
                    let node = self.graph.task(tid)?;
                    let spec = &self.pools[pi].spec;
                    let mut d = spec.estimate_latency(&node.work, &target)?;
                    // Newer GPU generations speed up pure-GPU tool work.
                    if matches!(target, HardwareTarget::Gpu { .. })
                        && self.options.gpu_speed_factor > 1.0
                    {
                        d = d.mul_f64(1.0 / self.options.gpu_speed_factor);
                    }
                    (d, spec.gpu_util())
                };
                self.cluster.activity_start(now, alloc, gpu_util)?;
                self.tasks[tid.raw() as usize].started_at = Some(now);
                self.queue.schedule(
                    now + duration,
                    EngineEvent::ToolDone {
                        task: tid,
                        pool: pi as u32,
                        worker: wi as u32,
                        gpu_util,
                    },
                );
            }
        }
        Ok(())
    }

    /// Releases pools whose capabilities have no remaining work.
    fn release_idle_pools(&mut self, now: SimTime) -> Result<(), SimError> {
        for pi in 0..self.pools.len() {
            let done = {
                let pool = &self.pools[pi];
                let no_demand = pool.caps.iter().all(|&c| self.upcoming[c as usize] == 0);
                let idle = pool.queue.is_empty() && pool.workers.iter().all(|w| !w.busy || w.dead);
                !pool.released && no_demand && idle
            };
            if done {
                let workers: Vec<AllocationId> = self.pools[pi]
                    .workers
                    .iter()
                    .filter(|w| !w.dead)
                    .map(|w| w.alloc)
                    .collect();
                for alloc in workers {
                    self.settle_allocation(alloc, now)?;
                }
                let pool = &mut self.pools[pi];
                pool.released = true;
                // The settled workers' allocations are gone; mark them dead
                // so a later re-provision (open-loop admission) never pumps
                // work onto a stale allocation.
                for w in pool.workers.iter_mut() {
                    w.dead = true;
                }
                self.pool_scale_downs += 1;
            }
        }
        Ok(())
    }

    /// Applies a spot preemption: settles the dying allocations' ledgers,
    /// takes the node down, marks affected pool workers dead (their
    /// in-flight tasks will requeue when their events fire), re-places
    /// affected endpoints on surviving nodes and resubmits their pending
    /// requests.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ResourceExhausted`] if a killed endpoint cannot
    /// be re-placed (the workflow cannot continue without its LLM), and
    /// propagates cluster errors.
    fn handle_preemption(&mut self, now: SimTime, node_idx: usize) -> Result<(), SimError> {
        let node_id = self
            .cluster
            .nodes()
            .get(node_idx)
            .ok_or_else(|| SimError::not_found("node", node_idx.to_string()))?
            .id;

        // Settle energy/cost for every live allocation on the node up to
        // the preemption instant (the platform still bills for spot time
        // used).
        let dying: Vec<AllocationId> = self
            .cluster
            .allocations()
            .filter(|a| a.node == node_id)
            .map(|a| a.id)
            .collect();
        for &alloc in &dying {
            let (created, target) =
                self.alloc_meta[alloc.raw() as usize].expect("live allocation has metadata");
            self.energy_ledger += self.cluster.allocation_energy_wh(alloc, created, now)?;
            self.cost_ledger += target_hourly_usd(&target, &self.options.gpu_sku)
                * now.saturating_duration_since(created).as_hours_f64();
        }

        let killed: BTreeSet<AllocationId> = self
            .cluster
            .preempt_node(now, node_id)?
            .into_iter()
            .collect();

        // Pool workers on the dead node: mark dead and try to replace on
        // surviving capacity; queued work continues on what remains.
        for pi in 0..self.pools.len() {
            let mut replacements = Vec::new();
            for w in self.pools[pi].workers.iter_mut() {
                if !w.dead && killed.contains(&w.alloc) {
                    w.dead = true;
                    replacements.push(w.target);
                }
            }
            for target in replacements {
                if let Ok(alloc) = self
                    .cluster
                    .allocate(now, self.pools[pi].agent.clone(), target)
                {
                    alloc_meta_set(&mut self.alloc_meta, alloc, now, target);
                    self.pools[pi].workers.push(Worker {
                        alloc,
                        target,
                        busy: false,
                        dead: false,
                    });
                }
            }
        }

        // Endpoints touching the dead node: re-place the whole deployment
        // (both halves of a disaggregated pair — the KV cache died with
        // the GPUs) and resubmit everything that was in flight.
        for ei in 0..self.endpoints.len() {
            let dead = self.endpoints[ei].allocs.iter().any(|a| killed.contains(a));
            if !dead {
                continue;
            }
            let model = self.endpoints[ei].backend.model().clone();
            let spec = self.endpoints[ei].spec_backend;
            // A pair may lose only one half: give the surviving half
            // back (activity zeroed, then settled) before re-placing the
            // deployment whole — release() never clears activity, so a
            // mid-batch level would otherwise stick to the freed devices.
            for ai in 0..self.endpoints[ei].allocs.len() {
                let alloc = self.endpoints[ei].allocs[ai];
                if !killed.contains(&alloc) && self.cluster.allocation(alloc).is_ok() {
                    self.cluster.set_gpu_activity_level(now, alloc, 0.0)?;
                    self.settle_allocation(alloc, now)?;
                }
            }
            let (backend, allocs) = Self::provision_backend(
                &mut self.cluster,
                &self.endpoints[ei].agent,
                &model,
                &spec,
                &self.options.gpu_sku,
                now,
                &mut self.alloc_meta,
            )?;
            let h = &mut self.endpoints[ei];
            let old_pending = std::mem::take(&mut h.pending);
            let had_orchestration = h.orchestration_req.take().is_some();
            h.backend = backend;
            h.allocs = allocs;
            h.free_slots.clear();
            h.submit_seq = 0;
            h.generation += 1;
            // Resubmit lost work in original submission order (the old
            // monotonic-id iteration order): pending tasks map to fresh
            // request slots.
            let mut lost: Vec<(TaskId, u64)> = old_pending.into_iter().flatten().collect();
            lost.sort_unstable_by_key(|&(_, seq)| seq);
            for (task, _) in lost {
                let (prompt, output) = {
                    let node = self.graph.task(task)?;
                    let Work::Tokens { prompt, output } = node.work else {
                        unreachable!("endpoint tasks carry token work");
                    };
                    (prompt, output)
                };
                let h = &mut self.endpoints[ei];
                let req = Request::new(h.claim_slot(task), prompt, output.max(1));
                let generation = h.generation;
                if let Some(t) = h.backend.on_submit(req, now)? {
                    self.queue.schedule(
                        t,
                        EngineEvent::LlmStep {
                            endpoint: ei as u32,
                            generation,
                        },
                    );
                }
            }
            if had_orchestration {
                let (cost, _) = self
                    .options
                    .orchestration
                    .as_ref()
                    .expect("orchestration was configured");
                let req = Request::new(
                    u64::MAX,
                    cost.prompt_tokens.max(1),
                    cost.output_tokens.max(1),
                );
                let h = &mut self.endpoints[ei];
                h.orchestration_req = Some(req.id);
                let generation = h.generation;
                if let Some(t) = h.backend.on_submit(req, now)? {
                    self.queue.schedule(
                        t,
                        EngineEvent::LlmStep {
                            endpoint: ei as u32,
                            generation,
                        },
                    );
                }
            }
            self.sync_endpoint_activity(now, ei)?;
        }
        Ok(())
    }

    /// Settles an allocation's energy/cost ledgers and releases it.
    fn settle_allocation(&mut self, alloc: AllocationId, now: SimTime) -> Result<(), SimError> {
        let (created, target) =
            self.alloc_meta[alloc.raw() as usize].expect("allocation has metadata");
        self.energy_ledger += self.cluster.allocation_energy_wh(alloc, created, now)?;
        self.cost_ledger += target_hourly_usd(&target, &self.options.gpu_sku)
            * now.saturating_duration_since(created).as_hours_f64();
        self.cluster.release(now, alloc)?;
        Ok(())
    }

    /// Mirrors an endpoint's utilization level onto its GPU devices —
    /// per phase for a disaggregated pair, combined for a colocated
    /// replica.
    fn sync_endpoint_activity(&mut self, now: SimTime, ei: usize) -> Result<(), SimError> {
        // Disjoint field borrows: the handle is read while the cluster
        // mutates — no clone of the allocation list.
        let h = &self.endpoints[ei];
        match *h.allocs.as_slice() {
            [one] => {
                let combined = h.backend.util_level();
                self.cluster.set_gpu_activity_level(now, one, combined)
            }
            [prefill, decode] => {
                let (prefill_level, decode_level) = h.backend.phase_levels();
                self.cluster
                    .set_gpu_activity_level(now, prefill, prefill_level)?;
                self.cluster
                    .set_gpu_activity_level(now, decode, decode_level)
            }
            ref other => {
                debug_assert!(other.is_empty(), "endpoints hold one or two allocations");
                Ok(())
            }
        }
    }

    /// Allocates and builds one serving deployment: a single TP group for
    /// a colocated replica, or a paired prefill/decode placement (one
    /// node when it fits, cross-node with degraded transfer bandwidth
    /// otherwise) for a disaggregated one.
    fn provision_backend(
        cluster: &mut ClusterManager,
        agent: &str,
        model: &ModelSpec,
        spec: &BackendSpec,
        sku: &GpuSku,
        now: SimTime,
        alloc_meta: &mut Vec<Option<(SimTime, HardwareTarget)>>,
    ) -> Result<(Box<dyn ServingBackend>, Vec<AllocationId>), SimError> {
        match *spec {
            BackendSpec::Colocated { gpus, .. } => {
                let target = HardwareTarget::gpus(gpus);
                let alloc = cluster.allocate(now, agent.to_string(), target)?;
                alloc_meta_set(alloc_meta, alloc, now, target);
                let be = build_backend(
                    agent,
                    model.clone(),
                    sku.clone(),
                    spec,
                    sku.interconnect_gbps,
                )?;
                Ok((be, vec![alloc]))
            }
            BackendSpec::Disaggregated {
                prefill_gpus,
                decode_gpus,
                ..
            } => {
                let prefill = HardwareTarget::gpus(prefill_gpus);
                let decode = HardwareTarget::gpus(decode_gpus);
                let pair = cluster.allocate_paired(now, agent.to_string(), prefill, decode)?;
                alloc_meta_set(alloc_meta, pair.prefill, now, prefill);
                alloc_meta_set(alloc_meta, pair.decode, now, decode);
                let bw = if pair.same_node {
                    sku.interconnect_gbps
                } else {
                    sku.interconnect_gbps * CROSS_NODE_INTERCONNECT_FACTOR
                };
                let be = build_backend(agent, model.clone(), sku.clone(), spec, bw)?;
                Ok((be, vec![pair.prefill, pair.decode]))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murakkab_agents::library::stock_library;
    use murakkab_cluster::PlacementPolicy;

    fn tiny_graph() -> TaskGraph {
        let mut g = TaskGraph::new();
        let a = g.add_task(
            "stt/x/s0",
            "stt",
            Capability::SpeechToText,
            Work::AudioSeconds(30.0),
        );
        let b = g.add_task(
            "sum/x/s0",
            "sum",
            Capability::Summarization,
            Work::Tokens {
                prompt: 600,
                output: 40,
            },
        );
        g.add_edge(a, b).expect("acyclic");
        g
    }

    fn routes() -> BTreeMap<Capability, RouteSpec> {
        BTreeMap::from([
            (
                Capability::SpeechToText,
                RouteSpec::Pool {
                    agent: "Whisper".into(),
                    workers: vec![HardwareTarget::ONE_GPU],
                },
            ),
            (
                Capability::Summarization,
                RouteSpec::Endpoint {
                    agent: "NVLM".into(),
                    backend: BackendSpec::Colocated {
                        gpus: 8,
                        max_batch: 3,
                    },
                },
            ),
        ])
    }

    #[test]
    fn minimal_graph_runs_to_completion() {
        let engine = Engine::new(
            ClusterManager::paper_testbed(),
            &stock_library(),
            tiny_graph(),
            routes(),
            EngineOptions::default(),
            SimTime::ZERO,
        )
        .expect("engine builds");
        let outcome = engine.run(SimTime::ZERO).expect("runs");
        assert_eq!(outcome.tasks_completed, 2);
        // STT ~3.8s then a summarisation call: well under a minute.
        assert!(outcome.makespan.as_secs_f64() < 60.0);
        assert!(outcome.energy_allocated_wh > 0.0);
        assert!(outcome.cost_usd > 0.0);
        assert_eq!(outcome.trace.lane_spans("Speech-to-Text").len(), 1);
        assert_eq!(outcome.trace.lane_spans("LLM (Text)").len(), 1);
    }

    #[test]
    fn missing_route_is_rejected_at_construction() {
        let mut partial = routes();
        partial.remove(&Capability::Summarization);
        let err = Engine::new(
            ClusterManager::paper_testbed(),
            &stock_library(),
            tiny_graph(),
            partial,
            EngineOptions::default(),
            SimTime::ZERO,
        )
        .expect_err("graph has an unroutable capability");
        assert!(err.to_string().contains("no route"));
    }

    #[test]
    fn backend_route_mismatch_is_rejected() {
        let mut bad = routes();
        // NVLM is LLM-served; a pool route is a category error.
        bad.insert(
            Capability::Summarization,
            RouteSpec::Pool {
                agent: "NVLM".into(),
                workers: vec![HardwareTarget::gpus(8)],
            },
        );
        let err = Engine::new(
            ClusterManager::paper_testbed(),
            &stock_library(),
            tiny_graph(),
            bad,
            EngineOptions::default(),
            SimTime::ZERO,
        )
        .expect_err("category error");
        assert!(err.to_string().contains("not a tool"));
    }

    #[test]
    fn empty_pool_is_rejected() {
        let mut bad = routes();
        bad.insert(
            Capability::SpeechToText,
            RouteSpec::Pool {
                agent: "Whisper".into(),
                workers: vec![],
            },
        );
        assert!(Engine::new(
            ClusterManager::paper_testbed(),
            &stock_library(),
            tiny_graph(),
            bad,
            EngineOptions::default(),
            SimTime::ZERO,
        )
        .is_err());
    }

    #[test]
    fn partial_pools_degrade_gracefully() {
        // Ask for 32 GPU workers on a 16-GPU cluster alongside an 8-GPU
        // endpoint: the pool accepts what fits and the run completes.
        let mut r = routes();
        r.insert(
            Capability::SpeechToText,
            RouteSpec::Pool {
                agent: "Whisper".into(),
                workers: vec![HardwareTarget::ONE_GPU; 32],
            },
        );
        let engine = Engine::new(
            ClusterManager::paper_testbed(),
            &stock_library(),
            tiny_graph(),
            r,
            EngineOptions::default(),
            SimTime::ZERO,
        )
        .expect("partial pool accepted");
        assert_eq!(engine.run(SimTime::ZERO).expect("runs").tasks_completed, 2);
    }

    #[test]
    fn hourly_rates_scale_with_target_and_sku() {
        let a100 = catalog::a100_80g();
        let h100 = catalog::h100_80g();
        let gpu8 = HardwareTarget::gpus(8);
        let cores64 = HardwareTarget::cpu_cores(64);
        assert!((target_hourly_usd(&gpu8, &a100) - 8.0 * a100.hourly_usd).abs() < 1e-9);
        assert!(target_hourly_usd(&gpu8, &h100) > target_hourly_usd(&gpu8, &a100));
        assert!(
            (target_hourly_usd(&cores64, &a100) - 64.0 * catalog::epyc_7v12().hourly_usd_per_core)
                .abs()
                < 1e-9
        );
        let hybrid = HardwareTarget::Hybrid {
            gpus: 1,
            gpu_share: 0.5,
            cores: 8,
        };
        let expect = 0.5 * a100.hourly_usd + 8.0 * catalog::epyc_7v12().hourly_usd_per_core;
        assert!((target_hourly_usd(&hybrid, &a100) - expect).abs() < 1e-9);
    }

    #[test]
    fn for_gpu_speed_factor_is_sublinear_in_flops() {
        let h100 = EngineOptions::for_gpu(catalog::h100_80g());
        let ratio = catalog::h100_80g().fp16_tflops / catalog::a100_80g().fp16_tflops;
        assert!((h100.gpu_speed_factor - ratio.sqrt()).abs() < 1e-9);
        let a100 = EngineOptions::for_gpu(catalog::a100_80g());
        assert!((a100.gpu_speed_factor - 1.0).abs() < 1e-9);
    }

    #[test]
    fn workflow_blind_holds_pools_to_the_end() {
        let run = |aware: bool| {
            let opts = EngineOptions {
                workflow_aware: aware,
                ..EngineOptions::default()
            };
            let engine = Engine::new(
                ClusterManager::paper_testbed(),
                &stock_library(),
                tiny_graph(),
                routes(),
                opts,
                SimTime::ZERO,
            )
            .expect("builds");
            engine.run(SimTime::ZERO).expect("runs")
        };
        let aware = run(true);
        let blind = run(false);
        assert_eq!(aware.tasks_completed, blind.tasks_completed);
        // Releasing the whisper GPU after STT saves allocated energy.
        assert!(aware.energy_allocated_wh < blind.energy_allocated_wh);
    }

    #[test]
    fn deadlock_reports_stuck_tasks() {
        // An endpoint task with non-token work can never dispatch.
        let mut g = TaskGraph::new();
        g.add_task("bad", "bad", Capability::Summarization, Work::Items(3));
        let engine = Engine::new(
            ClusterManager::paper_testbed(),
            &stock_library(),
            g,
            routes(),
            EngineOptions::default(),
            SimTime::ZERO,
        )
        .expect("builds");
        let err = engine
            .run(SimTime::ZERO)
            .expect_err("cannot run items on an LLM");
        assert!(err.to_string().contains("non-token work"), "{err}");
    }

    #[test]
    fn routes_report_their_agents() {
        for (_, r) in routes() {
            assert!(!r.agent().is_empty());
        }
        assert_eq!(
            RouteSpec::External {
                agent: "GPT-4o".into()
            }
            .agent(),
            "GPT-4o"
        );
    }

    #[test]
    fn spans_can_be_disabled_without_changing_the_ledgers() {
        let run = |record_spans: bool| {
            let opts = EngineOptions {
                record_spans,
                ..EngineOptions::default()
            };
            let engine = Engine::new(
                ClusterManager::paper_testbed(),
                &stock_library(),
                tiny_graph(),
                routes(),
                opts,
                SimTime::ZERO,
            )
            .expect("builds");
            engine.run(SimTime::ZERO).expect("runs")
        };
        let with = run(true);
        let without = run(false);
        assert_eq!(with.makespan, without.makespan);
        assert_eq!(with.tasks_completed, without.tasks_completed);
        assert!((with.energy_allocated_wh - without.energy_allocated_wh).abs() < 1e-12);
        assert!((with.cost_usd - without.cost_usd).abs() < 1e-12);
        assert!(without.trace.makespan() == SimTime::ZERO);
    }

    #[test]
    fn cluster_shortage_at_construction_is_checked() {
        let mut small = ClusterManager::new(PlacementPolicy::BestFit);
        small.add_node(catalog::cpu_only_f64s());
        assert!(matches!(
            Engine::new(
                small,
                &stock_library(),
                tiny_graph(),
                routes(),
                EngineOptions::default(),
                SimTime::ZERO,
            ),
            Err(SimError::ResourceExhausted { .. })
        ));
    }
}
