//! The discrete-event execution engine.
//!
//! The engine runs one task graph to completion against:
//!
//! - **worker pools** for tool capabilities (frame extraction, STT, object
//!   detection, ...): N workers, each holding an allocation from the
//!   cluster manager and executing one task instance at a time;
//! - **LLM endpoints** for served capabilities (summarisation, embedding,
//!   generation): requests go through `murakkab-llmsim`'s continuous
//!   batcher, so queueing and batching behaviour — the thing the paper's
//!   parallel-summarisation optimisation exploits — is simulated
//!   faithfully;
//! - **external agents** (proprietary APIs): fixed latency, dollar cost,
//!   no local resources.
//!
//! Everything advances on one deterministic event queue. The engine is
//! policy-free: which agent/hardware serves each capability is decided by
//! the caller (the Murakkab runtime or the imperative baseline executor)
//! and passed in as [`RouteSpec`]s.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use murakkab_agents::{AgentLibrary, Backend, Capability, Work};
use murakkab_cluster::{AllocationId, ClusterManager};
use murakkab_hardware::{catalog, EnergyScope, GpuSku, HardwareTarget};
use murakkab_llmsim::{build_backend, BackendSpec, ModelSpec, Request, ServingBackend};
use murakkab_orchestrator::OrchestratorCost;
use murakkab_sim::{EventQueue, SimDuration, SimError, SimTime, TraceLog};
use murakkab_workflow::{TaskGraph, TaskId};

/// Effective interconnect fraction available to a disaggregated pair
/// whose prefill and decode groups landed on different nodes (the KV
/// transfer rides the datacenter fabric instead of NVLink).
const CROSS_NODE_INTERCONNECT_FACTOR: f64 = 0.25;

/// How a capability's tasks are executed.
#[derive(Debug, Clone)]
pub enum RouteSpec {
    /// A pool of tool workers (one entry per worker, so hybrid pools can
    /// mix GPU and CPU workers — the paper's GPU+CPU STT configuration).
    Pool {
        /// Library agent name.
        agent: String,
        /// One hardware target per worker to try to allocate (≥1 must
        /// succeed).
        workers: Vec<HardwareTarget>,
    },
    /// A served-LLM endpoint (shared across capabilities that name the
    /// same agent). The deployment shape — colocated replica or a
    /// disaggregated prefill/decode pair — travels with the route; the
    /// engine only ever talks to the backend through the
    /// [`ServingBackend`] trait.
    Endpoint {
        /// Library agent name (must have an `LlmServed` backend).
        agent: String,
        /// Deployment shape consumed by the backend factory.
        backend: BackendSpec,
    },
    /// A third-party API call.
    External {
        /// Library agent name.
        agent: String,
    },
}

impl RouteSpec {
    /// The library agent this route uses.
    pub fn agent(&self) -> &str {
        match self {
            RouteSpec::Pool { agent, .. }
            | RouteSpec::Endpoint { agent, .. }
            | RouteSpec::External { agent } => agent,
        }
    }
}

/// Engine-level options.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Release tool pools as soon as the DAG shows no more work for them
    /// (§3.2 workflow-aware cluster management). Off for the baseline.
    pub workflow_aware: bool,
    /// Orchestration LLM cost to charge before any task dispatches, and
    /// the endpoint agent that serves it.
    pub orchestration: Option<(OrchestratorCost, String)>,
    /// Spot preemptions to inject: `(time, node index)` pairs. At each
    /// instant the node dies; running tool tasks on it restart on
    /// surviving workers, and endpoints re-place onto surviving nodes
    /// (the run fails with a checked error if they cannot).
    pub preemptions: Vec<(SimTime, usize)>,
    /// GPU SKU of the cluster (drives endpoint roofline and prices).
    pub gpu_sku: murakkab_hardware::GpuSku,
    /// Speedup factor applied to tool work on pure-GPU targets relative
    /// to the A100 calibration (≈ sqrt of the FLOPS ratio: media tools
    /// are partly memory/IO bound, so they do not scale with raw FLOPS).
    pub gpu_speed_factor: f64,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            workflow_aware: true,
            orchestration: None,
            preemptions: Vec::new(),
            gpu_sku: catalog::a100_80g(),
            gpu_speed_factor: 1.0,
        }
    }
}

impl EngineOptions {
    /// Options for a cluster built from `sku` GPUs.
    pub fn for_gpu(sku: murakkab_hardware::GpuSku) -> Self {
        let factor = (sku.fp16_tflops / catalog::a100_80g().fp16_tflops).sqrt();
        EngineOptions {
            gpu_speed_factor: factor,
            gpu_sku: sku,
            ..EngineOptions::default()
        }
    }
}

/// What a finished run hands back for reporting.
#[derive(Debug)]
pub struct EngineOutcome {
    /// The cluster (with full utilization history) after the run.
    pub cluster: ClusterManager,
    /// Per-task spans by component lane.
    pub trace: TraceLog,
    /// Start of execution (after orchestration).
    pub started: SimTime,
    /// Completion time of the last task.
    pub makespan: SimTime,
    /// Time spent in orchestration (DAG creation) before execution.
    pub orchestration: SimDuration,
    /// GPU energy of held allocations over their hold windows, in Wh
    /// (Murakkab's Table 2 scope).
    pub energy_allocated_wh: f64,
    /// Dollar cost of held allocations plus external calls.
    pub cost_usd: f64,
    /// Tasks completed.
    pub tasks_completed: usize,
    /// Tool pools (re-)provisioned after an idle release (open-loop
    /// autoscale-up events).
    pub pool_scale_ups: u64,
    /// Tool pools released on idleness (autoscale-down events).
    pub pool_scale_downs: u64,
}

impl EngineOutcome {
    /// Whole-fleet GPU energy over the run window (the baseline's Table 2
    /// scope: a rigid deployment strands the entire testbed).
    pub fn energy_fleet_wh(&self) -> f64 {
        self.cluster
            .energy_wh_all(SimTime::ZERO, self.makespan, EnergyScope::GpuOnly)
    }
}

#[derive(Debug)]
enum EngineEvent {
    ToolDone {
        task: TaskId,
        cap: Capability,
        worker: usize,
        gpu_util: f64,
    },
    LlmStep {
        agent: String,
        generation: u64,
    },
    ExternalDone {
        task: TaskId,
    },
    Preempt {
        node_idx: usize,
    },
}

#[derive(Debug)]
struct Worker {
    alloc: AllocationId,
    target: HardwareTarget,
    busy: bool,
    dead: bool,
}

#[derive(Debug)]
struct Pool {
    caps: Vec<Capability>,
    workers: Vec<Worker>,
    /// The originally requested worker targets — what a re-provision
    /// after an idle release tries to get back (open-loop serving).
    spec_workers: Vec<HardwareTarget>,
    queue: VecDeque<TaskId>,
    released: bool,
}

#[derive(Debug)]
struct EndpointHandle {
    backend: Box<dyn ServingBackend>,
    /// One allocation for a colocated replica; `[prefill, decode]` for a
    /// disaggregated pair.
    allocs: Vec<AllocationId>,
    pending: BTreeMap<u64, TaskId>,
    orchestration_req: Option<u64>,
    next_req: u64,
    /// Bumped when the endpoint is re-placed after preemption; stale step
    /// events armed for an earlier incarnation are dropped on arrival.
    generation: u64,
}

/// The execution engine (one run per instance).
#[derive(Debug)]
pub struct Engine {
    cluster: ClusterManager,
    graph: TaskGraph,
    routes: BTreeMap<Capability, RouteSpec>,
    pools: BTreeMap<String, Pool>,
    endpoints: BTreeMap<String, EndpointHandle>,
    external_latency: BTreeMap<Capability, (f64, f64)>,
    options: EngineOptions,
    queue: EventQueue<EngineEvent>,
    completed: BTreeSet<TaskId>,
    scheduled: BTreeSet<TaskId>,
    /// Remaining-predecessor counts; a task drops to zero exactly when it
    /// becomes schedulable (incremental ready tracking: dispatch is
    /// O(newly ready), not O(graph) — the fleet mode's graphs grow to
    /// thousands of tasks).
    indegree: BTreeMap<TaskId, usize>,
    /// Tasks whose last predecessor completed, awaiting dispatch.
    ready_pending: BTreeSet<TaskId>,
    /// Not-yet-completed task counts per capability (incrementally
    /// maintained DAG lookahead for pool release and the rebalancer).
    upcoming: BTreeMap<Capability, usize>,
    started_at: BTreeMap<TaskId, SimTime>,
    alloc_meta: BTreeMap<AllocationId, (SimTime, HardwareTarget)>,
    library_snapshot: BTreeMap<String, murakkab_agents::AgentSpec>,
    /// `(task, ttft seconds, tpot seconds, absolute first-token
    /// instant seconds)` of finished endpoint tasks, drained by the
    /// fleet driver for per-class token-latency stats and capture.
    llm_metrics: Vec<(TaskId, f64, f64, f64)>,
    /// Tasks finished since the last [`Engine::take_completions`] drain,
    /// in completion order — the fleet driver maps these to jobs via a
    /// per-job remaining-task counter instead of scanning
    /// [`Engine::completed_tasks`].
    completions_log: Vec<TaskId>,
    /// Events popped off the queue so far (the sim-speed denominator).
    events_processed: u64,
    trace: TraceLog,
    energy_ledger: f64,
    cost_ledger: f64,
    orchestrated: bool,
    orch_end: SimTime,
    pool_scale_ups: u64,
    pool_scale_downs: u64,
}

/// On-demand dollar rate of a hardware target under a given GPU SKU
/// (CPU cores billed at the EPYC catalog rate).
pub fn target_hourly_usd(target: &HardwareTarget, gpu: &murakkab_hardware::GpuSku) -> f64 {
    let core = catalog::epyc_7v12().hourly_usd_per_core;
    target.gpu_units() * gpu.hourly_usd + f64::from(target.cpu_cores_used()) * core
}

impl Engine {
    /// Builds an engine: allocates pools and endpoints on `cluster` at
    /// `start`.
    ///
    /// # Errors
    ///
    /// Fails when a route's agent is unknown, a backend mismatches its
    /// route kind, or the cluster cannot host even one worker / the
    /// endpoint group.
    pub fn new(
        mut cluster: ClusterManager,
        library: &AgentLibrary,
        graph: TaskGraph,
        routes: BTreeMap<Capability, RouteSpec>,
        options: EngineOptions,
        start: SimTime,
    ) -> Result<Self, SimError> {
        let mut pools: BTreeMap<String, Pool> = BTreeMap::new();
        let mut endpoints: BTreeMap<String, EndpointHandle> = BTreeMap::new();
        let mut external_latency = BTreeMap::new();
        let mut alloc_meta = BTreeMap::new();
        let library_snapshot = Self::snapshot_specs(library, &routes)?;

        // Validate that every capability in the graph has a route.
        for node in graph.tasks() {
            if !routes.contains_key(&node.capability) {
                return Err(SimError::InvalidInput(format!(
                    "no route for capability {:?} (task {})",
                    node.capability, node.name
                )));
            }
        }

        // Endpoints first: model deployments are long-lived and sized
        // exactly; elastic tool pools then shrink into whatever remains
        // (partial pools are accepted).
        let ordered: Vec<(&Capability, &RouteSpec)> = routes
            .iter()
            .filter(|(_, r)| matches!(r, RouteSpec::Endpoint { .. }))
            .chain(
                routes
                    .iter()
                    .filter(|(_, r)| !matches!(r, RouteSpec::Endpoint { .. })),
            )
            .collect();
        for (&cap, route) in ordered {
            let spec = library.get(route.agent())?;
            match route {
                RouteSpec::Pool { agent, workers } => {
                    let Backend::Tool(_) = &spec.backend else {
                        return Err(SimError::InvalidInput(format!(
                            "{agent} is not a tool; cannot serve {cap:?} from a pool"
                        )));
                    };
                    if workers.is_empty() {
                        return Err(SimError::InvalidInput(format!(
                            "pool for {agent} has no workers"
                        )));
                    }
                    let pool = pools.entry(agent.clone()).or_insert_with(|| Pool {
                        caps: Vec::new(),
                        workers: Vec::new(),
                        spec_workers: workers.clone(),
                        queue: VecDeque::new(),
                        released: false,
                    });
                    pool.caps.push(cap);
                    if pool.workers.is_empty() {
                        for per_worker in workers {
                            match cluster.allocate(start, agent.clone(), *per_worker) {
                                Ok(alloc) => {
                                    alloc_meta.insert(alloc, (start, *per_worker));
                                    pool.workers.push(Worker {
                                        alloc,
                                        target: *per_worker,
                                        busy: false,
                                        dead: false,
                                    });
                                }
                                Err(e) => {
                                    if pool.workers.is_empty() {
                                        return Err(e);
                                    }
                                    break; // Partial pool: run with what fits.
                                }
                            }
                        }
                    }
                }
                RouteSpec::Endpoint { agent, backend } => {
                    let Backend::LlmServed { model, .. } = &spec.backend else {
                        return Err(SimError::InvalidInput(format!(
                            "{agent} is not LLM-served; cannot serve {cap:?} from an endpoint"
                        )));
                    };
                    if !endpoints.contains_key(agent) {
                        let (be, allocs) = Self::provision_backend(
                            &mut cluster,
                            agent,
                            model,
                            backend,
                            &options.gpu_sku,
                            start,
                            &mut alloc_meta,
                        )?;
                        endpoints.insert(
                            agent.clone(),
                            EndpointHandle {
                                backend: be,
                                allocs,
                                pending: BTreeMap::new(),
                                orchestration_req: None,
                                next_req: 0,
                                generation: 0,
                            },
                        );
                    }
                }
                RouteSpec::External { agent } => {
                    let Backend::External {
                        latency_s,
                        cost_per_call_usd,
                    } = &spec.backend
                    else {
                        return Err(SimError::InvalidInput(format!(
                            "{agent} is not external; bad route for {cap:?}"
                        )));
                    };
                    external_latency.insert(cap, (*latency_s, *cost_per_call_usd));
                }
            }
        }

        let mut indegree = BTreeMap::new();
        let mut ready_pending = BTreeSet::new();
        let mut upcoming: BTreeMap<Capability, usize> = BTreeMap::new();
        for node in graph.tasks() {
            let preds = graph.predecessors(node.id).count();
            indegree.insert(node.id, preds);
            if preds == 0 {
                ready_pending.insert(node.id);
            }
            *upcoming.entry(node.capability).or_insert(0) += 1;
        }

        Ok(Engine {
            cluster,
            graph,
            routes,
            pools,
            endpoints,
            external_latency,
            options,
            queue: EventQueue::new(),
            completed: BTreeSet::new(),
            scheduled: BTreeSet::new(),
            indegree,
            ready_pending,
            upcoming,
            started_at: BTreeMap::new(),
            alloc_meta,
            library_snapshot,
            llm_metrics: Vec::new(),
            completions_log: Vec::new(),
            events_processed: 0,
            trace: TraceLog::new(),
            energy_ledger: 0.0,
            cost_ledger: 0.0,
            orchestrated: false,
            orch_end: start,
            pool_scale_ups: 0,
            pool_scale_downs: 0,
        })
    }

    /// Runs the graph to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidState`] if the run deadlocks (graph
    /// incomplete with no pending events) — a routing/scheduling bug.
    pub fn run(mut self, start: SimTime) -> Result<EngineOutcome, SimError> {
        self.start(start)?;
        while self.step()?.is_some() {}
        self.finish(start)
    }

    /// Arms the engine at `start`: schedules injected preemptions, charges
    /// orchestration (DAG creation) before any task dispatches, and
    /// dispatches whatever is already ready. Drive the armed engine with
    /// [`Engine::step`] (or let [`Engine::run`] do it).
    ///
    /// # Errors
    ///
    /// Propagates endpoint/cluster errors.
    pub fn start(&mut self, start: SimTime) -> Result<(), SimError> {
        let now = start;
        self.orch_end = start;

        for &(at, node_idx) in &self.options.preemptions.clone() {
            self.queue
                .schedule(at.max(start), EngineEvent::Preempt { node_idx });
        }

        if let Some((cost, agent)) = self.options.orchestration.clone() {
            let h = self
                .endpoints
                .get_mut(&agent)
                .ok_or_else(|| SimError::not_found("orchestrator endpoint", agent.clone()))?;
            let req = Request::new(
                u64::MAX,
                cost.prompt_tokens.max(1),
                cost.output_tokens.max(1),
            );
            h.orchestration_req = Some(req.id);
            if let Some(t) = h.backend.on_submit(req, now)? {
                let generation = h.generation;
                self.queue.schedule(
                    t,
                    EngineEvent::LlmStep {
                        agent: agent.clone(),
                        generation,
                    },
                );
            }
            self.sync_endpoint_activity(now, &agent)?;
        } else {
            self.orchestrated = true;
            self.dispatch(now)?;
        }
        Ok(())
    }

    /// Processes the next pending event and returns its instant, or `None`
    /// when the queue is empty. The open-loop fleet driver interleaves
    /// these steps with request admissions.
    ///
    /// # Errors
    ///
    /// Propagates endpoint/cluster errors.
    pub fn step(&mut self) -> Result<Option<SimTime>, SimError> {
        let Some(ev) = self.queue.pop() else {
            return Ok(None);
        };
        self.events_processed += 1;
        let now = ev.at;
        match ev.payload {
            EngineEvent::ToolDone {
                task,
                cap,
                worker,
                gpu_util,
            } => {
                let route_agent = self.routes[&cap].agent().to_string();
                let (alloc, lost) = {
                    let pool = self.pools.get_mut(&route_agent).expect("pool exists");
                    let w = &mut pool.workers[worker];
                    w.busy = false;
                    (w.alloc, w.dead)
                };
                if lost {
                    // The worker died mid-task: the work is lost and
                    // the task goes back to the queue (activity was
                    // zeroed when the node went down).
                    let pool = self.pools.get_mut(&route_agent).expect("pool exists");
                    pool.queue.push_front(task);
                } else {
                    self.cluster.activity_end(now, alloc, gpu_util)?;
                    self.finish_task(task, now)?;
                }
                self.dispatch(now)?;
            }
            EngineEvent::LlmStep { agent, generation } => {
                {
                    let h = self.endpoints.get(&agent).expect("endpoint exists");
                    if h.generation != generation {
                        // Armed for an incarnation that died in a
                        // preemption; the replacement has its own
                        // step schedule.
                        return Ok(Some(now));
                    }
                }
                let outcome = {
                    let h = self.endpoints.get_mut(&agent).expect("endpoint exists");
                    h.backend.on_step(now)
                };
                for c in &outcome.completions {
                    let h = self.endpoints.get_mut(&agent).expect("endpoint exists");
                    if h.orchestration_req == Some(c.id) {
                        h.orchestration_req = None;
                        self.trace
                            .record("Orchestrator", "dag-creation", c.submitted, c.finished);
                        self.orch_end = c.finished;
                        self.orchestrated = true;
                        continue;
                    }
                    let task = h
                        .pending
                        .remove(&c.id)
                        .expect("completion matches a pending task");
                    self.started_at.insert(task, c.started);
                    self.llm_metrics.push((
                        task,
                        c.ttft().as_secs_f64(),
                        c.tpot().as_secs_f64(),
                        c.first_token.as_secs_f64(),
                    ));
                    self.finish_task(task, now)?;
                }
                if let Some(t) = outcome.next_step {
                    self.queue.schedule(
                        t,
                        EngineEvent::LlmStep {
                            agent: agent.clone(),
                            generation,
                        },
                    );
                }
                self.sync_endpoint_activity(now, &agent)?;
                self.dispatch(now)?;
            }
            EngineEvent::ExternalDone { task } => {
                self.finish_task(task, now)?;
                self.dispatch(now)?;
            }
            EngineEvent::Preempt { node_idx } => {
                self.handle_preemption(now, node_idx)?;
                self.dispatch(now)?;
            }
        }
        Ok(Some(now))
    }

    /// Settles all ledgers after the queue has drained and hands back the
    /// outcome.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidState`] if the run deadlocked (graph
    /// incomplete with no pending events) — a routing/scheduling bug.
    pub fn finish(mut self, start: SimTime) -> Result<EngineOutcome, SimError> {
        let orch_end = self.orch_end;
        if self.completed.len() != self.graph.len() {
            let stuck: Vec<String> = self
                .graph
                .tasks()
                .filter(|t| !self.completed.contains(&t.id))
                .take(5)
                .map(|t| t.name.clone())
                .collect();
            return Err(SimError::InvalidState(format!(
                "engine deadlock: {}/{} tasks done; stuck: {stuck:?}",
                self.completed.len(),
                self.graph.len()
            )));
        }

        // The makespan is the last task completion — not `now`, which a
        // trailing injected event (e.g. a post-completion preemption) may
        // have advanced past it.
        let makespan = self.trace.makespan().max(orch_end);
        // Release everything still held, settling energy and cost.
        let live: Vec<AllocationId> = self.alloc_meta.keys().copied().collect();
        for alloc in live {
            if self.cluster.allocation(alloc).is_ok() {
                self.settle_allocation(alloc, makespan)?;
            }
        }

        Ok(EngineOutcome {
            cluster: self.cluster,
            trace: self.trace,
            started: orch_end,
            makespan,
            orchestration: orch_end.saturating_duration_since(start),
            energy_allocated_wh: self.energy_ledger,
            cost_usd: self.cost_ledger,
            tasks_completed: self.completed.len(),
            pool_scale_ups: self.pool_scale_ups,
            pool_scale_downs: self.pool_scale_downs,
        })
    }

    /// The due time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Processes pending events up to `bound` (`<= bound` when
    /// `inclusive`, `< bound` otherwise) in one batched drain, stopping
    /// early after any event that completes at least one task so the
    /// caller can re-inject queued work at that instant. Returns the
    /// stop instant, or `None` once no pending event falls within the
    /// bound.
    ///
    /// # Errors
    ///
    /// Propagates endpoint/cluster errors.
    pub fn step_while(
        &mut self,
        bound: SimTime,
        inclusive: bool,
    ) -> Result<Option<SimTime>, SimError> {
        loop {
            let Some(t) = self.queue.peek_time() else {
                return Ok(None);
            };
            let within = if inclusive { t <= bound } else { t < bound };
            if !within {
                return Ok(None);
            }
            let before = self.completions_log.len();
            let now = self.step()?.unwrap_or(t);
            if self.completions_log.len() > before {
                return Ok(Some(now));
            }
        }
    }

    /// Drains the tasks finished since the last call, in completion
    /// order.
    pub fn take_completions(&mut self) -> Vec<TaskId> {
        std::mem::take(&mut self.completions_log)
    }

    /// Events popped off this engine's queue so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Tasks completed so far (the fleet driver matches these against
    /// per-job id sets to detect workflow completions).
    pub fn completed_tasks(&self) -> &BTreeSet<TaskId> {
        &self.completed
    }

    /// Total tasks in the (possibly growing) graph.
    pub fn task_count(&self) -> usize {
        self.graph.len()
    }

    /// Not-yet-completed task counts per capability (the DAG lookahead the
    /// rebalancer consumes; maintained incrementally).
    pub fn upcoming_by_capability(&self) -> BTreeMap<Capability, usize> {
        self.upcoming.clone()
    }

    /// Live cluster stats at `now`.
    pub fn cluster_stats(&self, now: SimTime) -> murakkab_cluster::ResourceStats {
        self.cluster.stats(now)
    }

    /// Per-endpoint `(agent, gpus, queued + running requests)` snapshots.
    pub fn endpoint_loads(&self) -> Vec<(String, u32, usize)> {
        self.endpoints
            .iter()
            .map(|(agent, h)| (agent.clone(), h.backend.gpu_count(), h.backend.load()))
            .collect()
    }

    /// The hottest admission-gating KV pool across this engine's
    /// endpoints, as an occupancy fraction — the fleet router's KV-aware
    /// tiebreak signal.
    pub fn max_kv_occupancy(&self) -> f64 {
        self.endpoints
            .values()
            .map(|h| h.backend.kv_occupancy())
            .fold(0.0, f64::max)
    }

    /// Drains the accumulated `(task, ttft seconds, tpot seconds,
    /// absolute first-token instant seconds)` token-latency samples of
    /// finished endpoint tasks.
    pub fn take_llm_metrics(&mut self) -> Vec<(TaskId, f64, f64, f64)> {
        std::mem::take(&mut self.llm_metrics)
    }

    /// Aggregate per-phase serving effort across all endpoints:
    /// `(prefill busy GPU-seconds, prefill GPUs, decode busy
    /// GPU-seconds, decode GPUs)`. Colocated replicas count their group
    /// under both phases, split by where iteration time actually went.
    pub fn endpoint_phase_stats(&self) -> (f64, f64, f64, f64) {
        let mut out = (0.0, 0.0, 0.0, 0.0);
        for h in self.endpoints.values() {
            let (pb, db) = h.backend.phase_busy();
            let (pg, dg) = h.backend.phase_gpus();
            out.0 += pb.as_secs_f64() * f64::from(pg);
            out.1 += f64::from(pg);
            out.2 += db.as_secs_f64() * f64::from(dg);
            out.3 += f64::from(dg);
        }
        out
    }

    /// Per-pool `(agent, capability, GPU units held, queued + running
    /// tasks)` snapshots of live (non-released) pools, one entry per
    /// capability the pool serves — so advisory policies see tool agents
    /// as resident, not just LLM endpoints.
    pub fn pool_views(&self) -> Vec<(String, Capability, f64, usize)> {
        let mut out = Vec::new();
        for (agent, pool) in &self.pools {
            if pool.released {
                continue;
            }
            let gpus: f64 = pool
                .workers
                .iter()
                .filter(|w| !w.dead)
                .map(|w| w.target.gpu_units())
                .sum();
            let load = pool.queue.len() + pool.workers.iter().filter(|w| w.busy && !w.dead).count();
            for &cap in &pool.caps {
                out.push((agent.clone(), cap, gpus, load));
            }
        }
        out
    }

    /// Admits a workflow's task graph mid-run (open-loop serving): merges
    /// it under `prefix`, re-provisions any tool pools that were released
    /// while idle and are needed again, and dispatches newly ready tasks
    /// at `now`. Returns the old-id → new-id mapping so the caller can
    /// track the job's completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidInput`] if a capability in `sub` has no
    /// route, and [`SimError::ResourceExhausted`] if a required released
    /// pool cannot get any worker back.
    pub fn admit_graph(
        &mut self,
        now: SimTime,
        sub: &TaskGraph,
        prefix: &str,
    ) -> Result<BTreeMap<TaskId, TaskId>, SimError> {
        let mut caps_needed: BTreeSet<Capability> = BTreeSet::new();
        for node in sub.tasks() {
            if !self.routes.contains_key(&node.capability) {
                return Err(SimError::InvalidInput(format!(
                    "no route for capability {:?} (task {})",
                    node.capability, node.name
                )));
            }
            caps_needed.insert(node.capability);
        }

        // Autoscale-up: bring back released pools the new job needs.
        let agents: Vec<String> = self.pools.keys().cloned().collect();
        for agent in agents {
            let (needed, targets) = {
                let pool = &self.pools[&agent];
                (
                    pool.released && pool.caps.iter().any(|c| caps_needed.contains(c)),
                    pool.spec_workers.clone(),
                )
            };
            if !needed {
                continue;
            }
            let mut fresh = Vec::new();
            for target in &targets {
                match self.cluster.allocate(now, agent.clone(), *target) {
                    Ok(alloc) => {
                        self.alloc_meta.insert(alloc, (now, *target));
                        fresh.push(Worker {
                            alloc,
                            target: *target,
                            busy: false,
                            dead: false,
                        });
                    }
                    Err(e) => {
                        if fresh.is_empty() {
                            return Err(e);
                        }
                        break; // Partial pool: serve with what fits.
                    }
                }
            }
            // Reuse idle dead slots (an idle dead worker can have no
            // in-flight ToolDone carrying its index) so the worker list
            // does not grow with every scale cycle of a long-running
            // serve engine.
            let pool = self.pools.get_mut(&agent).expect("pool exists");
            let mut fresh = fresh.into_iter();
            for w in pool.workers.iter_mut() {
                if w.dead && !w.busy {
                    match fresh.next() {
                        Some(nw) => *w = nw,
                        None => break,
                    }
                }
            }
            pool.workers.extend(fresh);
            pool.released = false;
            self.pool_scale_ups += 1;
        }

        let map = self.graph.absorb_prefixed(sub, prefix);
        for &new_id in map.values() {
            let preds = self.graph.predecessors(new_id).count();
            self.indegree.insert(new_id, preds);
            if preds == 0 {
                self.ready_pending.insert(new_id);
            }
            let cap = self.graph.task(new_id)?.capability;
            *self.upcoming.entry(cap).or_insert(0) += 1;
        }
        self.dispatch(now)?;
        Ok(map)
    }

    /// Marks a task complete, records its span and advances the
    /// incremental ready/lookahead state.
    fn finish_task(&mut self, task: TaskId, now: SimTime) -> Result<(), SimError> {
        let node = self.graph.task(task)?;
        let capability = node.capability;
        let started = self.started_at.get(&task).copied().unwrap_or(now);
        self.trace
            .record(capability.lane_name(), node.name.clone(), started, now);
        if self.completed.insert(task) {
            self.completions_log.push(task);
            if let Some(n) = self.upcoming.get_mut(&capability) {
                *n -= 1;
                if *n == 0 {
                    self.upcoming.remove(&capability);
                }
            }
            let succs: Vec<TaskId> = self.graph.successors(task).collect();
            for s in succs {
                let d = self.indegree.get_mut(&s).expect("successor indexed");
                *d -= 1;
                if *d == 0 {
                    self.ready_pending.insert(s);
                }
            }
        }
        Ok(())
    }

    /// Pushes ready tasks to their routes and pumps pools.
    fn dispatch(&mut self, now: SimTime) -> Result<(), SimError> {
        if !self.orchestrated {
            return Ok(());
        }
        let ready: Vec<TaskId> = std::mem::take(&mut self.ready_pending)
            .into_iter()
            .filter(|t| !self.scheduled.contains(t))
            .collect();
        for tid in ready {
            self.scheduled.insert(tid);
            let node = self.graph.task(tid)?.clone();
            let route = self.routes[&node.capability].clone();
            match route {
                RouteSpec::Pool { agent, .. } => {
                    self.pools
                        .get_mut(&agent)
                        .expect("pool exists")
                        .queue
                        .push_back(tid);
                }
                RouteSpec::Endpoint { agent, .. } => {
                    let Work::Tokens { prompt, output } = node.work else {
                        return Err(SimError::InvalidInput(format!(
                            "endpoint task {} carries non-token work {}",
                            node.name, node.work
                        )));
                    };
                    let h = self.endpoints.get_mut(&agent).expect("endpoint exists");
                    let req = Request::new(h.next_req, prompt, output.max(1));
                    h.next_req += 1;
                    h.pending.insert(req.id, tid);
                    let generation = h.generation;
                    if let Some(t) = h.backend.on_submit(req, now)? {
                        self.queue.schedule(
                            t,
                            EngineEvent::LlmStep {
                                agent: agent.clone(),
                                generation,
                            },
                        );
                    }
                    self.sync_endpoint_activity(now, &agent)?;
                }
                RouteSpec::External { .. } => {
                    let (latency_s, cost) = self.external_latency[&node.capability];
                    self.cost_ledger += cost;
                    self.started_at.insert(tid, now);
                    self.queue.schedule(
                        now + SimDuration::from_secs_f64(latency_s),
                        EngineEvent::ExternalDone { task: tid },
                    );
                }
            }
        }
        self.pump_pools(now)?;
        if self.options.workflow_aware {
            self.release_idle_pools(now)?;
        }
        Ok(())
    }

    /// Starts queued tasks on free workers.
    fn pump_pools(&mut self, now: SimTime) -> Result<(), SimError> {
        let agents: Vec<String> = self.pools.keys().cloned().collect();
        for agent in agents {
            while let Some((tid, worker_idx, alloc, target, cap)) = {
                let pool = self.pools.get_mut(&agent).expect("pool exists");
                match (
                    pool.queue.front().copied(),
                    pool.workers
                        .iter()
                        .position(|w| !w.busy && !w.dead && !pool.released),
                ) {
                    (Some(tid), Some(i)) => {
                        pool.queue.pop_front();
                        pool.workers[i].busy = true;
                        let node_cap = self.graph.task(tid)?.capability;
                        Some((
                            tid,
                            i,
                            pool.workers[i].alloc,
                            pool.workers[i].target,
                            node_cap,
                        ))
                    }
                    _ => None,
                }
            } {
                let node = self.graph.task(tid)?.clone();
                let spec_name = self.routes[&cap].agent().to_string();
                // Borrow the library indirectly: the cost model lives on
                // the spec; engines keep a private copy at routing time.
                let (duration, gpu_util) = {
                    let spec = self.agent_spec(&spec_name)?;
                    let mut d = spec.estimate_latency(&node.work, &target)?;
                    // Newer GPU generations speed up pure-GPU tool work.
                    if matches!(target, HardwareTarget::Gpu { .. })
                        && self.options.gpu_speed_factor > 1.0
                    {
                        d = d.mul_f64(1.0 / self.options.gpu_speed_factor);
                    }
                    (d, spec.gpu_util())
                };
                self.cluster.activity_start(now, alloc, gpu_util)?;
                self.started_at.insert(tid, now);
                self.queue.schedule(
                    now + duration,
                    EngineEvent::ToolDone {
                        task: tid,
                        cap,
                        worker: worker_idx,
                        gpu_util,
                    },
                );
            }
        }
        Ok(())
    }

    /// Releases pools whose capabilities have no remaining work.
    fn release_idle_pools(&mut self, now: SimTime) -> Result<(), SimError> {
        let upcoming = self.upcoming.clone();
        let agents: Vec<String> = self.pools.keys().cloned().collect();
        for agent in agents {
            let (done, workers): (bool, Vec<AllocationId>) = {
                let pool = &self.pools[&agent];
                let no_demand = pool
                    .caps
                    .iter()
                    .all(|c| upcoming.get(c).copied().unwrap_or(0) == 0);
                let idle = pool.queue.is_empty() && pool.workers.iter().all(|w| !w.busy || w.dead);
                (
                    !pool.released && no_demand && idle,
                    pool.workers
                        .iter()
                        .filter(|w| !w.dead)
                        .map(|w| w.alloc)
                        .collect(),
                )
            };
            if done {
                for alloc in workers {
                    self.settle_allocation(alloc, now)?;
                }
                let pool = self.pools.get_mut(&agent).expect("pool exists");
                pool.released = true;
                // The settled workers' allocations are gone; mark them dead
                // so a later re-provision (open-loop admission) never pumps
                // work onto a stale allocation.
                for w in pool.workers.iter_mut() {
                    w.dead = true;
                }
                self.pool_scale_downs += 1;
            }
        }
        Ok(())
    }

    /// Applies a spot preemption: settles the dying allocations' ledgers,
    /// takes the node down, marks affected pool workers dead (their
    /// in-flight tasks will requeue when their events fire), re-places
    /// affected endpoints on surviving nodes and resubmits their pending
    /// requests.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ResourceExhausted`] if a killed endpoint cannot
    /// be re-placed (the workflow cannot continue without its LLM), and
    /// propagates cluster errors.
    fn handle_preemption(&mut self, now: SimTime, node_idx: usize) -> Result<(), SimError> {
        let node_id = self
            .cluster
            .nodes()
            .get(node_idx)
            .ok_or_else(|| SimError::not_found("node", node_idx.to_string()))?
            .id;

        // Settle energy/cost for every live allocation on the node up to
        // the preemption instant (the platform still bills for spot time
        // used).
        let dying: Vec<AllocationId> = self
            .cluster
            .allocations()
            .filter(|a| a.node == node_id)
            .map(|a| a.id)
            .collect();
        for alloc in &dying {
            let (created, target) = self.alloc_meta[alloc];
            self.energy_ledger += self.cluster.allocation_energy_wh(*alloc, created, now)?;
            self.cost_ledger += target_hourly_usd(&target, &self.options.gpu_sku)
                * now.saturating_duration_since(created).as_hours_f64();
        }

        let killed: BTreeSet<AllocationId> = self
            .cluster
            .preempt_node(now, node_id)?
            .into_iter()
            .collect();

        // Pool workers on the dead node: mark dead and try to replace on
        // surviving capacity; queued work continues on what remains.
        let agents: Vec<String> = self.pools.keys().cloned().collect();
        for agent in agents {
            let mut replacements = Vec::new();
            {
                let pool = self.pools.get_mut(&agent).expect("pool exists");
                for w in pool.workers.iter_mut() {
                    if !w.dead && killed.contains(&w.alloc) {
                        w.dead = true;
                        replacements.push(w.target);
                    }
                }
            }
            for target in replacements {
                if let Ok(alloc) = self.cluster.allocate(now, agent.clone(), target) {
                    self.alloc_meta.insert(alloc, (now, target));
                    self.pools
                        .get_mut(&agent)
                        .expect("pool exists")
                        .workers
                        .push(Worker {
                            alloc,
                            target,
                            busy: false,
                            dead: false,
                        });
                }
            }
        }

        // Endpoints touching the dead node: re-place the whole deployment
        // (both halves of a disaggregated pair — the KV cache died with
        // the GPUs) and resubmit everything that was in flight.
        let ep_agents: Vec<String> = self.endpoints.keys().cloned().collect();
        for agent in ep_agents {
            let (dead, model) = {
                let h = &self.endpoints[&agent];
                (
                    h.allocs.iter().any(|a| killed.contains(a)),
                    h.backend.model().clone(),
                )
            };
            if !dead {
                continue;
            }
            let spec = self
                .routes
                .values()
                .find_map(|r| match r {
                    RouteSpec::Endpoint { agent: a, backend } if *a == agent => Some(*backend),
                    _ => None,
                })
                .expect("endpoint came from a route");
            // A pair may lose only one half: give the surviving half
            // back (activity zeroed, then settled) before re-placing the
            // deployment whole — release() never clears activity, so a
            // mid-batch level would otherwise stick to the freed devices.
            for alloc in self.endpoints[&agent].allocs.clone() {
                if !killed.contains(&alloc) && self.cluster.allocation(alloc).is_ok() {
                    self.cluster.set_gpu_activity_level(now, alloc, 0.0)?;
                    self.settle_allocation(alloc, now)?;
                }
            }
            let (backend, allocs) = Self::provision_backend(
                &mut self.cluster,
                &agent,
                &model,
                &spec,
                &self.options.gpu_sku,
                now,
                &mut self.alloc_meta,
            )?;
            let next_generation = self.endpoints[&agent].generation + 1;
            let old = self
                .endpoints
                .insert(
                    agent.clone(),
                    EndpointHandle {
                        backend,
                        allocs,
                        pending: BTreeMap::new(),
                        orchestration_req: None,
                        next_req: 0,
                        generation: next_generation,
                    },
                )
                .expect("endpoint existed");
            // Resubmit lost work: pending tasks map to fresh request ids.
            for (_, task) in old.pending {
                let node = self.graph.task(task)?.clone();
                let Work::Tokens { prompt, output } = node.work else {
                    unreachable!("endpoint tasks carry token work");
                };
                let h = self.endpoints.get_mut(&agent).expect("just inserted");
                let req = Request::new(h.next_req, prompt, output.max(1));
                h.next_req += 1;
                h.pending.insert(req.id, task);
                let generation = h.generation;
                if let Some(t) = h.backend.on_submit(req, now)? {
                    self.queue.schedule(
                        t,
                        EngineEvent::LlmStep {
                            agent: agent.clone(),
                            generation,
                        },
                    );
                }
            }
            if old.orchestration_req.is_some() {
                let (cost, _) = self
                    .options
                    .orchestration
                    .clone()
                    .expect("orchestration was configured");
                let h = self.endpoints.get_mut(&agent).expect("just inserted");
                let req = Request::new(
                    u64::MAX,
                    cost.prompt_tokens.max(1),
                    cost.output_tokens.max(1),
                );
                h.orchestration_req = Some(req.id);
                let generation = h.generation;
                if let Some(t) = h.backend.on_submit(req, now)? {
                    self.queue.schedule(
                        t,
                        EngineEvent::LlmStep {
                            agent: agent.clone(),
                            generation,
                        },
                    );
                }
            }
            self.sync_endpoint_activity(now, &agent)?;
        }
        Ok(())
    }

    /// Settles an allocation's energy/cost ledgers and releases it.
    fn settle_allocation(&mut self, alloc: AllocationId, now: SimTime) -> Result<(), SimError> {
        let (created, target) = self.alloc_meta[&alloc];
        self.energy_ledger += self.cluster.allocation_energy_wh(alloc, created, now)?;
        self.cost_ledger += target_hourly_usd(&target, &self.options.gpu_sku)
            * now.saturating_duration_since(created).as_hours_f64();
        self.cluster.release(now, alloc)?;
        Ok(())
    }

    /// Mirrors an endpoint's utilization level onto its GPU devices —
    /// per phase for a disaggregated pair, combined for a colocated
    /// replica.
    fn sync_endpoint_activity(&mut self, now: SimTime, agent: &str) -> Result<(), SimError> {
        let (allocs, combined, (prefill_level, decode_level)) = {
            let h = &self.endpoints[agent];
            (
                h.allocs.clone(),
                h.backend.util_level(),
                h.backend.phase_levels(),
            )
        };
        match allocs.as_slice() {
            [one] => self.cluster.set_gpu_activity_level(now, *one, combined),
            [prefill, decode] => {
                self.cluster
                    .set_gpu_activity_level(now, *prefill, prefill_level)?;
                self.cluster
                    .set_gpu_activity_level(now, *decode, decode_level)
            }
            other => {
                debug_assert!(other.is_empty(), "endpoints hold one or two allocations");
                Ok(())
            }
        }
    }

    /// Allocates and builds one serving deployment: a single TP group for
    /// a colocated replica, or a paired prefill/decode placement (one
    /// node when it fits, cross-node with degraded transfer bandwidth
    /// otherwise) for a disaggregated one.
    fn provision_backend(
        cluster: &mut ClusterManager,
        agent: &str,
        model: &ModelSpec,
        spec: &BackendSpec,
        sku: &GpuSku,
        now: SimTime,
        alloc_meta: &mut BTreeMap<AllocationId, (SimTime, HardwareTarget)>,
    ) -> Result<(Box<dyn ServingBackend>, Vec<AllocationId>), SimError> {
        match *spec {
            BackendSpec::Colocated { gpus, .. } => {
                let target = HardwareTarget::gpus(gpus);
                let alloc = cluster.allocate(now, agent.to_string(), target)?;
                alloc_meta.insert(alloc, (now, target));
                let be = build_backend(
                    agent,
                    model.clone(),
                    sku.clone(),
                    spec,
                    sku.interconnect_gbps,
                )?;
                Ok((be, vec![alloc]))
            }
            BackendSpec::Disaggregated {
                prefill_gpus,
                decode_gpus,
                ..
            } => {
                let prefill = HardwareTarget::gpus(prefill_gpus);
                let decode = HardwareTarget::gpus(decode_gpus);
                let pair = cluster.allocate_paired(now, agent.to_string(), prefill, decode)?;
                alloc_meta.insert(pair.prefill, (now, prefill));
                alloc_meta.insert(pair.decode, (now, decode));
                let bw = if pair.same_node {
                    sku.interconnect_gbps
                } else {
                    sku.interconnect_gbps * CROSS_NODE_INTERCONNECT_FACTOR
                };
                let be = build_backend(agent, model.clone(), sku.clone(), spec, bw)?;
                Ok((be, vec![pair.prefill, pair.decode]))
            }
        }
    }

    /// Looks up an agent spec by name (cloned out of the routes' library
    /// snapshot held by the caller — engines only need cost models, which
    /// are value types).
    fn agent_spec(&self, name: &str) -> Result<murakkab_agents::AgentSpec, SimError> {
        self.library_snapshot
            .get(name)
            .cloned()
            .ok_or_else(|| SimError::not_found("agent", name))
    }
}

// The engine needs agent cost models during the run without holding a
// borrow on the caller's library; it snapshots the specs it routes to.
impl Engine {
    /// Internal: the spec snapshot, filled by [`Engine::new`].
    fn snapshot_specs(
        library: &AgentLibrary,
        routes: &BTreeMap<Capability, RouteSpec>,
    ) -> Result<BTreeMap<String, murakkab_agents::AgentSpec>, SimError> {
        let mut out = BTreeMap::new();
        for route in routes.values() {
            let spec = library.get(route.agent())?;
            out.insert(spec.name.clone(), spec.clone());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use murakkab_agents::library::stock_library;
    use murakkab_cluster::PlacementPolicy;

    fn tiny_graph() -> TaskGraph {
        let mut g = TaskGraph::new();
        let a = g.add_task(
            "stt/x/s0",
            "stt",
            Capability::SpeechToText,
            Work::AudioSeconds(30.0),
        );
        let b = g.add_task(
            "sum/x/s0",
            "sum",
            Capability::Summarization,
            Work::Tokens {
                prompt: 600,
                output: 40,
            },
        );
        g.add_edge(a, b).expect("acyclic");
        g
    }

    fn routes() -> BTreeMap<Capability, RouteSpec> {
        BTreeMap::from([
            (
                Capability::SpeechToText,
                RouteSpec::Pool {
                    agent: "Whisper".into(),
                    workers: vec![HardwareTarget::ONE_GPU],
                },
            ),
            (
                Capability::Summarization,
                RouteSpec::Endpoint {
                    agent: "NVLM".into(),
                    backend: BackendSpec::Colocated {
                        gpus: 8,
                        max_batch: 3,
                    },
                },
            ),
        ])
    }

    #[test]
    fn minimal_graph_runs_to_completion() {
        let engine = Engine::new(
            ClusterManager::paper_testbed(),
            &stock_library(),
            tiny_graph(),
            routes(),
            EngineOptions::default(),
            SimTime::ZERO,
        )
        .expect("engine builds");
        let outcome = engine.run(SimTime::ZERO).expect("runs");
        assert_eq!(outcome.tasks_completed, 2);
        // STT ~3.8s then a summarisation call: well under a minute.
        assert!(outcome.makespan.as_secs_f64() < 60.0);
        assert!(outcome.energy_allocated_wh > 0.0);
        assert!(outcome.cost_usd > 0.0);
        assert_eq!(outcome.trace.lane_spans("Speech-to-Text").len(), 1);
        assert_eq!(outcome.trace.lane_spans("LLM (Text)").len(), 1);
    }

    #[test]
    fn missing_route_is_rejected_at_construction() {
        let mut partial = routes();
        partial.remove(&Capability::Summarization);
        let err = Engine::new(
            ClusterManager::paper_testbed(),
            &stock_library(),
            tiny_graph(),
            partial,
            EngineOptions::default(),
            SimTime::ZERO,
        )
        .expect_err("graph has an unroutable capability");
        assert!(err.to_string().contains("no route"));
    }

    #[test]
    fn backend_route_mismatch_is_rejected() {
        let mut bad = routes();
        // NVLM is LLM-served; a pool route is a category error.
        bad.insert(
            Capability::Summarization,
            RouteSpec::Pool {
                agent: "NVLM".into(),
                workers: vec![HardwareTarget::gpus(8)],
            },
        );
        let err = Engine::new(
            ClusterManager::paper_testbed(),
            &stock_library(),
            tiny_graph(),
            bad,
            EngineOptions::default(),
            SimTime::ZERO,
        )
        .expect_err("category error");
        assert!(err.to_string().contains("not a tool"));
    }

    #[test]
    fn empty_pool_is_rejected() {
        let mut bad = routes();
        bad.insert(
            Capability::SpeechToText,
            RouteSpec::Pool {
                agent: "Whisper".into(),
                workers: vec![],
            },
        );
        assert!(Engine::new(
            ClusterManager::paper_testbed(),
            &stock_library(),
            tiny_graph(),
            bad,
            EngineOptions::default(),
            SimTime::ZERO,
        )
        .is_err());
    }

    #[test]
    fn partial_pools_degrade_gracefully() {
        // Ask for 32 GPU workers on a 16-GPU cluster alongside an 8-GPU
        // endpoint: the pool accepts what fits and the run completes.
        let mut r = routes();
        r.insert(
            Capability::SpeechToText,
            RouteSpec::Pool {
                agent: "Whisper".into(),
                workers: vec![HardwareTarget::ONE_GPU; 32],
            },
        );
        let engine = Engine::new(
            ClusterManager::paper_testbed(),
            &stock_library(),
            tiny_graph(),
            r,
            EngineOptions::default(),
            SimTime::ZERO,
        )
        .expect("partial pool accepted");
        assert_eq!(engine.run(SimTime::ZERO).expect("runs").tasks_completed, 2);
    }

    #[test]
    fn hourly_rates_scale_with_target_and_sku() {
        let a100 = catalog::a100_80g();
        let h100 = catalog::h100_80g();
        let gpu8 = HardwareTarget::gpus(8);
        let cores64 = HardwareTarget::cpu_cores(64);
        assert!((target_hourly_usd(&gpu8, &a100) - 8.0 * a100.hourly_usd).abs() < 1e-9);
        assert!(target_hourly_usd(&gpu8, &h100) > target_hourly_usd(&gpu8, &a100));
        assert!(
            (target_hourly_usd(&cores64, &a100) - 64.0 * catalog::epyc_7v12().hourly_usd_per_core)
                .abs()
                < 1e-9
        );
        let hybrid = HardwareTarget::Hybrid {
            gpus: 1,
            gpu_share: 0.5,
            cores: 8,
        };
        let expect = 0.5 * a100.hourly_usd + 8.0 * catalog::epyc_7v12().hourly_usd_per_core;
        assert!((target_hourly_usd(&hybrid, &a100) - expect).abs() < 1e-9);
    }

    #[test]
    fn for_gpu_speed_factor_is_sublinear_in_flops() {
        let h100 = EngineOptions::for_gpu(catalog::h100_80g());
        let ratio = catalog::h100_80g().fp16_tflops / catalog::a100_80g().fp16_tflops;
        assert!((h100.gpu_speed_factor - ratio.sqrt()).abs() < 1e-9);
        let a100 = EngineOptions::for_gpu(catalog::a100_80g());
        assert!((a100.gpu_speed_factor - 1.0).abs() < 1e-9);
    }

    #[test]
    fn workflow_blind_holds_pools_to_the_end() {
        let run = |aware: bool| {
            let opts = EngineOptions {
                workflow_aware: aware,
                ..EngineOptions::default()
            };
            let engine = Engine::new(
                ClusterManager::paper_testbed(),
                &stock_library(),
                tiny_graph(),
                routes(),
                opts,
                SimTime::ZERO,
            )
            .expect("builds");
            engine.run(SimTime::ZERO).expect("runs")
        };
        let aware = run(true);
        let blind = run(false);
        assert_eq!(aware.tasks_completed, blind.tasks_completed);
        // Releasing the whisper GPU after STT saves allocated energy.
        assert!(aware.energy_allocated_wh < blind.energy_allocated_wh);
    }

    #[test]
    fn deadlock_reports_stuck_tasks() {
        // An endpoint task with non-token work can never dispatch.
        let mut g = TaskGraph::new();
        g.add_task("bad", "bad", Capability::Summarization, Work::Items(3));
        let engine = Engine::new(
            ClusterManager::paper_testbed(),
            &stock_library(),
            g,
            routes(),
            EngineOptions::default(),
            SimTime::ZERO,
        )
        .expect("builds");
        let err = engine
            .run(SimTime::ZERO)
            .expect_err("cannot run items on an LLM");
        assert!(err.to_string().contains("non-token work"), "{err}");
    }

    #[test]
    fn routes_report_their_agents() {
        for (_, r) in routes() {
            assert!(!r.agent().is_empty());
        }
        assert_eq!(
            RouteSpec::External {
                agent: "GPT-4o".into()
            }
            .agent(),
            "GPT-4o"
        );
    }

    #[test]
    fn cluster_shortage_at_construction_is_checked() {
        let mut small = ClusterManager::new(PlacementPolicy::BestFit);
        small.add_node(catalog::cpu_only_f64s());
        assert!(matches!(
            Engine::new(
                small,
                &stock_library(),
                tiny_graph(),
                routes(),
                EngineOptions::default(),
                SimTime::ZERO,
            ),
            Err(SimError::ResourceExhausted { .. })
        ));
    }
}
