//! The Murakkab adaptive runtime.
//!
//! This is the paper's contribution assembled: a declarative [`Job`] goes
//! through decomposition (simulated ReAct planning), instance-level
//! expansion, profile-driven agent/hardware selection under the job's
//! constraints (consulting live cluster telemetry), and execution on the
//! discrete-event engine with workflow-aware resource management.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use murakkab_agents::library::stock_library;
use murakkab_agents::profile::Objective;
use murakkab_agents::{AgentLibrary, Backend, Capability, ProfileStore, Profiler};
use murakkab_cluster::ClusterManager;
use murakkab_hardware::{DeviceKind, HardwareTarget, VmShape};
use murakkab_llmsim::{plan_backend, ServingMode};
use murakkab_orchestrator::{expand, JobInputs, Planner};
use murakkab_sim::{SimDuration, SimError, SimTime};
use murakkab_workflow::Job;

use crate::engine::{Engine, EngineOptions, EngineOutcome, RouteSpec};
use crate::report::RunReport;
use crate::workloads;

/// Which Speech-to-Text resource configuration to run (the Figure 3 /
/// Table 2 experiment axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SttChoice {
    /// Let the runtime pick from execution profiles under the job's
    /// constraints (the paper: `MIN_COST` ⇒ the CPU configuration).
    #[default]
    Auto,
    /// Whisper on 1 dedicated GPU (like the baseline's provisioning).
    Gpu,
    /// Whisper on 64 CPU cores (8 workers × 8 cores).
    Cpu,
    /// Whisper on 1 GPU plus 64 CPU cores.
    Hybrid,
}

/// Per-run options.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Report label.
    pub label: String,
    /// STT configuration override.
    pub stt: SttChoice,
    /// Workflow-aware cluster management (pool release on DAG lookahead).
    pub workflow_aware: bool,
    /// Maximum per-stage worker fan-out (task-parallelism lever).
    pub parallelism: u32,
    /// Pin the paper's agents (OpenCV/Whisper/CLIP/NVLM) instead of free
    /// library selection — keeps the §4 experiments faithful while other
    /// jobs still exercise full selection.
    pub pin_paper_agents: bool,
    /// Spot preemptions to inject: `(seconds, node index)`.
    pub preemptions: Vec<(f64, usize)>,
    /// Serving regime LLM endpoints deploy under (colocated continuous
    /// batching, or disaggregated prefill/decode pairs).
    pub serving: ServingMode,
    /// Extra selection constraints ANDed in *after* (below) the jobs'
    /// own constraints, so they tighten bounds without overriding a
    /// job's primary objective.
    pub constraints: Vec<murakkab_workflow::Constraint>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            label: "murakkab".into(),
            stt: SttChoice::Auto,
            workflow_aware: true,
            parallelism: 16,
            pin_paper_agents: true,
            preemptions: Vec::new(),
            serving: ServingMode::Colocated,
            constraints: Vec::new(),
        }
    }
}

impl RunOptions {
    /// Options with a label.
    pub fn labeled(label: &str) -> Self {
        RunOptions {
            label: label.into(),
            ..RunOptions::default()
        }
    }

    /// Sets the STT configuration.
    #[must_use]
    pub fn stt(mut self, choice: SttChoice) -> Self {
        self.stt = choice;
        self
    }

    /// Sets workflow-awareness.
    #[must_use]
    pub fn workflow_aware(mut self, on: bool) -> Self {
        self.workflow_aware = on;
        self
    }

    /// Sets the parallelism lever.
    #[must_use]
    pub fn parallelism(mut self, n: u32) -> Self {
        self.parallelism = n;
        self
    }

    /// Enables/disables paper-agent pinning.
    #[must_use]
    pub fn pin_paper_agents(mut self, on: bool) -> Self {
        self.pin_paper_agents = on;
        self
    }

    /// Injects a spot preemption of cluster node `node` at `seconds`.
    #[must_use]
    pub fn preempt_at(mut self, seconds: f64, node: usize) -> Self {
        self.preemptions.push((seconds, node));
        self
    }

    /// Sets the endpoint serving regime.
    #[must_use]
    pub fn serving(mut self, mode: ServingMode) -> Self {
        self.serving = mode;
        self
    }

    /// Validates the numeric fields, so bad parameters surface as a typed
    /// [`SimError::InvalidInput`] at the entry point instead of silent
    /// misbehavior downstream (a zero-width pool, a preemption event at a
    /// NaN instant).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidInput`] on zero `parallelism` or a NaN,
    /// negative or non-finite preemption instant.
    pub fn validate(&self) -> Result<(), SimError> {
        crate::analyze::first_error(&crate::analyze::run_options_diags(self))
    }
}

/// The outcome of one selection/routing pass.
pub(crate) struct RoutePlan {
    pub(crate) routes: BTreeMap<Capability, RouteSpec>,
    pub(crate) selections: BTreeMap<Capability, murakkab_orchestrator::SelectedConfig>,
    pub(crate) orchestrator_agent: Option<String>,
}

/// The Murakkab runtime: library + profiles + a cluster template.
pub struct Runtime {
    seed: u64,
    library: AgentLibrary,
    profiles: ProfileStore,
    shape: VmShape,
    nodes: usize,
}

impl Runtime {
    /// The paper's testbed: two `Standard_ND96amsr_A100_v4` VMs, the
    /// stock agent library, profiles generated by the offline profiler.
    pub fn paper_testbed(seed: u64) -> Self {
        Self::with_shape(seed, murakkab_hardware::catalog::nd96amsr_a100_v4(), 2)
    }

    /// A runtime over `nodes` VMs of the given shape.
    pub fn with_shape(seed: u64, shape: VmShape, nodes: usize) -> Self {
        let library = stock_library();
        let profiles = Profiler::default().profile_library(&library);
        Runtime {
            seed,
            library,
            profiles,
            shape,
            nodes,
        }
    }

    /// The agent library.
    pub fn library(&self) -> &AgentLibrary {
        &self.library
    }

    /// The execution profiles.
    pub fn profiles(&self) -> &ProfileStore {
        &self.profiles
    }

    /// The workload seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The VM shape the cluster is built from.
    pub fn shape(&self) -> &VmShape {
        &self.shape
    }

    /// The number of cluster nodes the runtime provisions.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    pub(crate) fn build_cluster(&self) -> ClusterManager {
        self.build_cluster_of(self.nodes)
    }

    /// A fresh cluster of `nodes` VMs of this runtime's shape — the geo
    /// layer builds one per region slice (and per spot node) instead of
    /// partitioning the single scenario cluster evenly.
    pub(crate) fn build_cluster_of(&self, nodes: usize) -> ClusterManager {
        let mut cm = ClusterManager::new(murakkab_cluster::PlacementPolicy::BestFit);
        for _ in 0..nodes {
            cm.add_node(self.shape.clone());
        }
        cm
    }

    /// Runs the paper's Video Understanding job (Listing 2 against the
    /// seeded two-video workload).
    ///
    /// # Errors
    ///
    /// Propagates planning, placement and execution errors.
    #[deprecated(
        since = "0.6.0",
        note = "declare a `Scenario` with the `paper-video` catalog entry \
                and execute it through `Session` instead"
    )]
    pub fn run_video_understanding(&self, opts: RunOptions) -> Result<RunReport, SimError> {
        let job = workloads::paper_video_job();
        let inputs = workloads::paper_video_inputs(self.seed);
        self.run_jobs(std::slice::from_ref(&(job, inputs)), &opts, false)
    }

    /// Runs any declarative job against concrete inputs.
    ///
    /// # Errors
    ///
    /// Propagates planning, placement and execution errors.
    #[deprecated(
        since = "0.6.0",
        note = "declare a closed-loop `Scenario` (`WorkloadSource::Jobs`) \
                and execute it through `Session` instead"
    )]
    pub fn run_job(
        &self,
        job: &Job,
        inputs: &JobInputs,
        opts: RunOptions,
    ) -> Result<RunReport, SimError> {
        self.run_jobs(
            std::slice::from_ref(&(job.clone(), inputs.clone())),
            &opts,
            false,
        )
    }

    /// Runs several independent jobs *concurrently* on one shared cluster
    /// — the paper's Figure 2: "higher resource multiplexing between
    /// independent workflows to improve efficiency".
    ///
    /// # Errors
    ///
    /// Propagates planning, placement and execution errors; fails if
    /// `jobs` is empty.
    #[deprecated(
        since = "0.6.0",
        note = "declare a closed-loop `Scenario` with several workload \
                entries and execute it through `Session` instead"
    )]
    pub fn run_concurrent(
        &self,
        jobs: &[(Job, JobInputs)],
        opts: RunOptions,
    ) -> Result<RunReport, SimError> {
        self.run_jobs(jobs, &opts, true)
    }

    /// The shared closed-loop pipeline behind every entry point: plan
    /// (decompose) → expand → select agent/hardware configs → execute on
    /// the discrete-event engine. One job runs as-is; several jobs are
    /// multi-tenant — their graphs merge under `w{i}/` prefixes, all
    /// workflows share agent deployments (one NVLM replica serves every
    /// tenant's summarisation and generation) and the engine interleaves
    /// their task graphs on the same event loop.
    ///
    /// Selection uses the merged constraint set (all tenants' constraints
    /// in job order, so the strictest quality floor applies) and the
    /// union of per-tenant agent filters.
    pub(crate) fn run_jobs(
        &self,
        jobs: &[(Job, JobInputs)],
        opts: &RunOptions,
        multi_tenant: bool,
    ) -> Result<RunReport, SimError> {
        opts.validate()?;
        if jobs.is_empty() {
            return Err(SimError::InvalidInput("no jobs to run".into()));
        }
        let cluster = self.build_cluster();
        let mut stats = cluster.stats(SimTime::ZERO);

        // Decompose and expand every job; accumulate orchestration cost
        // and constraints. Multi-tenant runs merge the graphs with
        // per-tenant prefixes; a solo run keeps its graph untouched.
        let mut merged = murakkab_workflow::TaskGraph::new();
        let mut solo_graph = None;
        let mut constraints = murakkab_workflow::ConstraintSet::new();
        let mut total_cost = murakkab_orchestrator::OrchestratorCost {
            prompt_tokens: 0,
            output_tokens: 0,
        };
        let mut cap_archetypes: BTreeMap<Capability, Vec<String>> = BTreeMap::new();
        for (i, (job, inputs)) in jobs.iter().enumerate() {
            let (plan, cost) = Planner.decompose(job, &self.library)?;
            let graph = expand(&plan, inputs)?;
            if multi_tenant {
                merged.absorb_prefixed(&graph, &format!("w{i}/"));
            } else {
                solo_graph = Some(graph);
            }
            total_cost.prompt_tokens += cost.prompt_tokens;
            total_cost.output_tokens += cost.output_tokens;
            for c in job.constraints.all() {
                constraints = constraints.and(*c);
            }
            for cap in plan.capabilities() {
                cap_archetypes
                    .entry(cap)
                    .or_default()
                    .push(plan.archetype.clone());
            }
        }
        for &c in &opts.constraints {
            constraints = constraints.and(c);
        }
        if !multi_tenant && jobs.len() > 1 {
            return Err(SimError::InvalidInput(
                "several jobs need the multi-tenant pipeline".into(),
            ));
        }
        let graph = solo_graph.unwrap_or(merged);

        // One shared selection/routing pass over the union of
        // capabilities.
        let RoutePlan {
            routes,
            selections,
            orchestrator_agent,
        } = self.select_routes(&cap_archetypes, &constraints, &mut stats, opts)?;

        let mut engine_opts = self.engine_options(opts);
        engine_opts.orchestration = orchestrator_agent.map(|a| (total_cost, a));

        let engine = Engine::new(
            cluster,
            &self.library,
            graph,
            routes,
            engine_opts,
            SimTime::ZERO,
        )?;
        let outcome = engine.run(SimTime::ZERO)?;
        let quality = murakkab_agents::quality::compose(
            &selections.values().map(|s| s.quality).collect::<Vec<_>>(),
        );
        Ok(report_from_outcome(
            &opts.label,
            outcome,
            quality,
            false,
            &selections
                .iter()
                .map(|(c, s)| (c.to_string(), format!("{}@{}", s.agent, s.target)))
                .collect(),
        ))
    }

    /// Engine options for a run: the cluster's GPU SKU plus the
    /// workflow-awareness and preemption schedule from the options —
    /// shared by the closed-loop pipeline and the fleet cells.
    pub(crate) fn engine_options(&self, opts: &RunOptions) -> EngineOptions {
        let mut engine_opts = EngineOptions::for_gpu(
            self.shape
                .gpu
                .clone()
                .unwrap_or_else(murakkab_hardware::catalog::a100_80g),
        );
        engine_opts.workflow_aware = opts.workflow_aware;
        engine_opts.preemptions = opts
            .preemptions
            .iter()
            .map(|&(s, n)| (SimTime::from_secs_f64(s), n))
            .collect();
        engine_opts
    }

    /// Agent/hardware selection and routing for a set of capabilities —
    /// the shared pass behind [`Runtime::run_job`],
    /// [`Runtime::run_concurrent`] and [`Runtime::serve`].
    ///
    /// Selection is sequential and resource-aware: each choice debits the
    /// projected stats so later choices cannot jointly over-commit the
    /// cluster, and agents sharing an already-selected model count as
    /// resident (§3.2: prefer what is already running). Endpoints serving
    /// the same model weights are deduplicated — multiplexing one serving
    /// stack across stages/tenants is exactly the efficiency §3.2 argues
    /// for. Per-capability agent filters are intersected across the
    /// requesting archetypes (the strictest tenant wins).
    pub(crate) fn select_routes(
        &self,
        cap_archetypes: &BTreeMap<Capability, Vec<String>>,
        constraints: &murakkab_workflow::ConstraintSet,
        stats: &mut murakkab_cluster::ResourceStats,
        opts: &RunOptions,
    ) -> Result<RoutePlan, SimError> {
        let mut resident: BTreeSet<String> = BTreeSet::new();
        let mut resident_models: BTreeSet<String> = BTreeSet::new();
        let mut selections: BTreeMap<Capability, murakkab_orchestrator::SelectedConfig> =
            BTreeMap::new();
        let mut routes: BTreeMap<Capability, RouteSpec> = BTreeMap::new();
        let mut orchestrator_agent: Option<String> = None;
        let mut endpoint_by_model: BTreeMap<String, String> = BTreeMap::new();
        for (&cap, archetypes) in cap_archetypes {
            let mut allowed: Option<BTreeSet<String>> = None;
            for archetype in archetypes {
                if let Some(set) = self.allowed_agents(cap, archetype, opts.pin_paper_agents) {
                    allowed = Some(match allowed {
                        None => set,
                        Some(prev) => prev.intersection(&set).cloned().collect(),
                    });
                }
            }
            let sel = murakkab_orchestrator::select_config(
                cap,
                &self.profiles,
                constraints,
                Some(stats),
                &resident,
                allowed.as_ref(),
            )?;
            let spec = self.library.get(&sel.agent)?;
            let route = match &spec.backend {
                Backend::Tool(_) => {
                    let route = if cap == Capability::SpeechToText {
                        self.stt_route(&sel.agent, opts.stt, opts.parallelism, constraints)?
                    } else {
                        RouteSpec::Pool {
                            agent: sel.agent.clone(),
                            workers: pool_workers(cap, sel.target, opts.parallelism),
                        }
                    };
                    // Debit the projected stats with the route's real
                    // footprint so later selections cannot over-commit.
                    if let RouteSpec::Pool { workers, .. } = &route {
                        let gpus: f64 = workers.iter().map(HardwareTarget::gpu_units).sum();
                        let cores: u32 = workers.iter().map(HardwareTarget::cpu_cores_used).sum();
                        stats.gpus_free = (stats.gpus_free - gpus).max(0.0);
                        stats.cores_free = (stats.cores_free - f64::from(cores)).max(0.0);
                    }
                    route
                }
                Backend::LlmServed {
                    model,
                    default_gpus,
                    max_batch,
                } => {
                    let serving_agent = endpoint_by_model
                        .entry(model.name.clone())
                        .or_insert_with(|| sel.agent.clone())
                        .clone();
                    // KV-occupancy- and phase-aware deployment planning:
                    // the group grows until the model plus a working set
                    // fit, and under disaggregated serving the budget
                    // splits into a paired prefill/decode deployment.
                    let sku = self
                        .shape
                        .gpu
                        .clone()
                        .unwrap_or_else(murakkab_hardware::catalog::a100_80g);
                    let backend =
                        plan_backend(model, &sku, *default_gpus, *max_batch, opts.serving);
                    if resident_models.insert(model.name.clone()) {
                        stats.gpus_free =
                            (stats.gpus_free - f64::from(backend.gpus_total())).max(0.0);
                    }
                    // Every agent serving the same weights is now "already
                    // running" for later capabilities.
                    for a in self.library.all() {
                        if let Backend::LlmServed { model: m, .. } = &a.backend {
                            if m.name == model.name {
                                resident.insert(a.name.clone());
                            }
                        }
                    }
                    orchestrator_agent.get_or_insert_with(|| serving_agent.clone());
                    RouteSpec::Endpoint {
                        agent: serving_agent,
                        backend,
                    }
                }
                Backend::External { .. } => RouteSpec::External {
                    agent: sel.agent.clone(),
                },
            };
            routes.insert(cap, route);
            selections.insert(cap, sel);
        }
        Ok(RoutePlan {
            routes,
            selections,
            orchestrator_agent,
        })
    }

    /// The agent filter for a capability: paper pinning and/or the
    /// multimodality requirement of VLM summarisation.
    fn allowed_agents(
        &self,
        cap: Capability,
        archetype: &str,
        pin: bool,
    ) -> Option<BTreeSet<String>> {
        if pin && archetype == "video-understanding" {
            let name = match cap {
                Capability::FrameExtraction => "OpenCV",
                Capability::SpeechToText => "Whisper",
                Capability::ObjectDetection => "CLIP",
                Capability::Summarization | Capability::TextGeneration => "NVLM",
                Capability::Embedding => "NVLM-Embed",
                Capability::VectorStore => "VectorDB",
                _ => return None,
            };
            return Some([name.to_string()].into());
        }
        // Frame/scene summarisation in video jobs needs a multimodal model.
        if archetype == "video-understanding" && cap == Capability::Summarization {
            return Some(
                self.library
                    .candidates(cap)
                    .filter(|a| a.multimodal)
                    .map(|a| a.name.clone())
                    .collect(),
            );
        }
        None
    }

    /// The STT worker pool for a configuration choice.
    fn stt_route(
        &self,
        agent: &str,
        choice: SttChoice,
        parallelism: u32,
        constraints: &murakkab_workflow::ConstraintSet,
    ) -> Result<RouteSpec, SimError> {
        let choice = match choice {
            SttChoice::Auto => {
                // Rank the three paper configurations by the primary
                // objective using the agent's execution profiles
                // (§4: MIN_COST picks the CPU configuration).
                match constraints.primary_objective() {
                    Objective::Cost | Objective::Power => SttChoice::Cpu,
                    Objective::Latency | Objective::Quality => SttChoice::Gpu,
                }
            }
            c => c,
        };
        // The paper's CPU configuration is 64 cores = 8 workers x 8 cores;
        // the task-parallelism lever scales the worker count down from
        // there.
        let cpu_workers = || -> Vec<HardwareTarget> {
            vec![HardwareTarget::cpu_cores(8); parallelism.clamp(1, 8) as usize]
        };
        let workers = match choice {
            SttChoice::Gpu => vec![HardwareTarget::ONE_GPU],
            SttChoice::Cpu => cpu_workers(),
            SttChoice::Hybrid => {
                let mut w = vec![HardwareTarget::ONE_GPU];
                w.extend(cpu_workers());
                w
            }
            SttChoice::Auto => unreachable!("resolved above"),
        };
        Ok(RouteSpec::Pool {
            agent: agent.to_string(),
            workers,
        })
    }
}

/// Worker targets for a tool capability under the parallelism lever.
///
/// CPU workers are right-sized per capability so wide pools fit the
/// 192-core testbed alongside the 64-core STT pool (the profile's target
/// describes one *item's* resources; the pool decides fan-out).
fn pool_workers(cap: Capability, target: HardwareTarget, parallelism: u32) -> Vec<HardwareTarget> {
    let width = match cap {
        Capability::FrameExtraction => parallelism.min(16),
        Capability::ObjectDetection => parallelism.min(8),
        Capability::SpeechToText => parallelism.min(8),
        Capability::VectorStore => parallelism.min(2),
        _ => parallelism.min(4),
    }
    .max(1);
    let budget = match cap {
        Capability::FrameExtraction => 4,
        Capability::ObjectDetection => 2,
        Capability::VectorStore => 1,
        Capability::SpeechToText => 8,
        _ => 2,
    };
    let per_worker = match target {
        HardwareTarget::Cpu { cores } => HardwareTarget::cpu_cores(cores.min(budget).max(1)),
        HardwareTarget::Hybrid {
            gpus,
            gpu_share,
            cores,
        } => HardwareTarget::Hybrid {
            gpus,
            gpu_share,
            cores: cores.min(budget).max(1),
        },
        gpu => gpu,
    };
    vec![per_worker; width as usize]
}

/// Converts an engine outcome into a run report.
pub(crate) fn report_from_outcome(
    label: &str,
    outcome: EngineOutcome,
    quality: f64,
    rigid: bool,
    selections: &BTreeMap<String, String>,
) -> RunReport {
    let makespan = outcome.makespan;
    let sample = SimDuration::from_secs(1);
    let gpu_util = outcome
        .cluster
        .aggregate_util(DeviceKind::Gpu, SimTime::ZERO, makespan, sample);
    let cpu_util =
        outcome
            .cluster
            .aggregate_util(DeviceKind::CpuPool, SimTime::ZERO, makespan, sample);
    RunReport {
        label: label.to_string(),
        makespan_s: makespan.as_secs_f64(),
        orchestration_s: outcome.orchestration.as_secs_f64(),
        energy_allocated_wh: outcome.energy_allocated_wh,
        energy_fleet_wh: outcome.energy_fleet_wh(),
        cost_usd: outcome.cost_usd,
        quality,
        tasks: outcome.tasks_completed,
        rigid_deployment: rigid,
        trace: outcome.trace,
        gpu_util,
        cpu_util,
        selections: selections.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Video Understanding workload through the shared pipeline (what
    /// the deprecated `run_video_understanding` shim wraps).
    fn vu(rt: &Runtime, opts: RunOptions) -> Result<RunReport, SimError> {
        let job = workloads::paper_video_job();
        let inputs = workloads::paper_video_inputs(rt.seed());
        rt.run_jobs(&[(job, inputs)], &opts, false)
    }

    #[test]
    fn video_understanding_runs_end_to_end() {
        let rt = Runtime::paper_testbed(42);
        let report = vu(&rt, RunOptions::labeled("murakkab-auto")).unwrap();
        // 16 scenes x (extract + stt + detect + scene-sum + embed + insert)
        // + 80 frame summaries.
        assert_eq!(report.tasks, 16 * 6 + 80);
        assert!(report.makespan_s > 10.0);
        assert!(report.makespan_s < 200.0, "{}", report.makespan_s);
        assert!(report.energy_allocated_wh > 0.0);
        assert!(report.quality >= 0.9);
        assert!(report.orchestration_s > 0.0);
        assert!(!report.trace.spans().is_empty());
    }

    #[test]
    fn stt_choices_change_the_outcome() {
        let rt = Runtime::paper_testbed(42);
        let gpu = vu(&rt, RunOptions::labeled("gpu").stt(SttChoice::Gpu)).unwrap();
        let cpu = vu(&rt, RunOptions::labeled("cpu").stt(SttChoice::Cpu)).unwrap();
        // The CPU configuration must not use the Whisper GPU; the GPU one
        // must.
        assert!(gpu.makespan_s != cpu.makespan_s);
        assert!(
            cpu.energy_allocated_wh < gpu.energy_allocated_wh,
            "cpu {} vs gpu {}",
            cpu.energy_allocated_wh,
            gpu.energy_allocated_wh
        );
    }

    #[test]
    fn auto_follows_min_cost_to_cpu() {
        // Listing 2 carries MIN_COST; Auto must behave like Cpu.
        let rt = Runtime::paper_testbed(42);
        let auto = vu(&rt, RunOptions::labeled("auto")).unwrap();
        let cpu = vu(&rt, RunOptions::labeled("cpu").stt(SttChoice::Cpu)).unwrap();
        assert!((auto.makespan_s - cpu.makespan_s).abs() < 1e-6);
        assert!((auto.energy_allocated_wh - cpu.energy_allocated_wh).abs() < 1e-6);
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let rt = Runtime::paper_testbed(7);
        let a = vu(&rt, RunOptions::labeled("a").stt(SttChoice::Gpu)).unwrap();
        let b = vu(&rt, RunOptions::labeled("b").stt(SttChoice::Gpu)).unwrap();
        assert_eq!(a.makespan_s, b.makespan_s);
        assert_eq!(a.energy_allocated_wh, b.energy_allocated_wh);
        assert_eq!(a.trace.spans().len(), b.trace.spans().len());
    }

    #[test]
    fn newsfeed_job_runs_without_pinning() {
        let rt = Runtime::paper_testbed(42);
        let (job, inputs) = workloads::newsfeed_job("Alice", 12);
        let report = rt
            .run_jobs(&[(job, inputs)], &RunOptions::labeled("newsfeed"), false)
            .unwrap();
        assert_eq!(report.tasks, 3 * 12 + 2);
        assert!(report.makespan_s > 0.0);
    }

    #[test]
    fn invalid_numeric_options_are_rejected_upfront() {
        let rt = Runtime::paper_testbed(1);
        let (job, inputs) = workloads::newsfeed_job("Alice", 2);
        let jobs = [(job, inputs)];

        let mut zero_width = RunOptions::labeled("bad");
        zero_width.parallelism = 0;
        assert!(matches!(
            rt.run_jobs(&jobs, &zero_width, false),
            Err(SimError::InvalidInput(_))
        ));

        for bad_at in [f64::NAN, -1.0, f64::INFINITY] {
            let opts = RunOptions::labeled("bad").preempt_at(bad_at, 0);
            assert!(
                matches!(
                    rt.run_jobs(&jobs, &opts, false),
                    Err(SimError::InvalidInput(_))
                ),
                "preempt_at({bad_at}) must be rejected"
            );
        }
    }
}
