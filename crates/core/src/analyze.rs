//! Static preflight analysis of [`Scenario`]s.
//!
//! A scenario is plain data, which means an infeasible or
//! self-contradicting configuration can be caught *before* burning a
//! simulation run. [`analyze`] inspects a scenario without executing it
//! and emits typed [`Diagnostic`]s at three severities:
//!
//! - **error** (`ANZ0xx`) — the scenario cannot execute: degenerate
//!   numerics, empty workloads, mode/workload mismatches, unknown
//!   catalog entries, jobs that fail to plan, constraint sets no agent
//!   satisfies. [`Scenario::validate`], [`RunOptions::validate`] and
//!   [`FleetOptions::validate`] are thin wrappers over the same rules,
//!   so the execution path and the analyzer can never disagree.
//! - **warning** (`ANZ1xx`) — the scenario executes but is predicted to
//!   misbehave: a deployment group no node can host, aggregate GPU
//!   demand above cluster capacity, an SLO deadline below the
//!   critical-path service-time lower bound, offered load above
//!   aggregate capacity with admission disabled, a token-bucket burst
//!   the bounded queue cannot absorb.
//! - **info** (`ANZ2xx`) — advisory: disaggregation falling back to
//!   colocated, a prefill/decode pair that cannot share a node, the
//!   predicted shed-rate floor under admission control, knobs a mode
//!   ignores.
//!
//! The analyzer is exposed three ways: this module's [`analyze`]
//! function (re-exported by the `murakkab_analyze` facade crate), the
//! `analyze` CLI binary that lints `scenarios/*.json`, and the
//! [`PreflightMode`](crate::scenario::PreflightMode) gate on
//! [`Session::execute`](crate::scenario::Session::execute).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use murakkab_agents::Capability;
use murakkab_hardware::{HardwareTarget, VmShape};
use murakkab_llmsim::ServingMode;
use murakkab_orchestrator::{expand, JobInputs, Planner};
use murakkab_sim::{SimError, SimRng, SimTime};
use murakkab_traffic::{AdmissionConfig, Archetype, ArrivalProcess, TenantProfile};
use murakkab_workflow::{ConstraintSet, Job, TaskGraph};

use crate::engine::RouteSpec;
use crate::fleet::{canonical_job, estimate_service_s, fleet_job, FleetOptions};
use crate::runtime::{RoutePlan, RunOptions, Runtime};
use crate::scenario::{sample_mix_jobs, ExecutionMode, OpenLoopSpec, Scenario, WorkloadSource};
use crate::workloads::{WorkloadCatalog, WorkloadParams};

/// Stable diagnostic codes (`ANZ0xx` errors, `ANZ1xx` warnings,
/// `ANZ2xx` infos). The constants exist so tests and tools can match on
/// codes without string literals drifting.
pub mod codes {
    /// The cluster has no nodes.
    pub const CLUSTER_EMPTY: &str = "ANZ001";
    /// The workload is empty or degenerate (no entries/jobs/tenants, a
    /// zero-weight tenant set or mix, a non-positive SLO deadline).
    pub const WORKLOAD_DEGENERATE: &str = "ANZ002";
    /// Execution mode and workload source do not fit together.
    pub const MODE_MISMATCH: &str = "ANZ003";
    /// A numeric knob is out of range (zero parallelism, NaN horizon,
    /// zero shards, a preemption outside the run or the cluster).
    pub const BAD_NUMERIC: &str = "ANZ004";
    /// The admission configuration cannot build a controller.
    pub const ADMISSION_INVALID: &str = "ANZ005";
    /// The arrival process parameters are invalid.
    pub const ARRIVALS_INVALID: &str = "ANZ006";
    /// More engine cells than cluster nodes.
    pub const SHARDS_EXCEED_NODES: &str = "ANZ007";
    /// A catalog reference names no registered workload.
    pub const UNKNOWN_CATALOG_ENTRY: &str = "ANZ008";
    /// A job fails to decompose into a plan or expand into a DAG.
    pub const PLAN_FAILED: &str = "ANZ009";
    /// No agent/hardware config satisfies the constraint set.
    pub const CONSTRAINTS_UNSATISFIABLE: &str = "ANZ010";
    /// The geo federation spec is self-contradictory (no regions, an
    /// asymmetric or non-finite RTT matrix, degenerate epochs).
    pub const GEO_INVALID: &str = "ANZ011";
    /// A geo spec on a closed-loop scenario (federation is an
    /// open-loop serving concept).
    pub const GEO_MODE_MISMATCH: &str = "ANZ012";
    /// The cluster node count differs from the geo footprint (the sum
    /// of every region's on-demand nodes, plus spot nodes when elastic
    /// capacity is enabled).
    pub const GEO_NODES_MISMATCH: &str = "ANZ013";

    /// A deployment group (TP group or pool worker) fits no node.
    pub const NO_PLACEMENT: &str = "ANZ101";
    /// Aggregate GPU demand of the selected routes exceeds capacity.
    pub const CAPACITY_EXCEEDED: &str = "ANZ102";
    /// A deadline or latency bound sits below the critical-path
    /// service-time lower bound.
    pub const SLO_INFEASIBLE: &str = "ANZ103";
    /// Offered load exceeds aggregate service capacity with admission
    /// disabled (the backlog grows without bound).
    pub const OVERLOAD_UNBOUNDED: &str = "ANZ104";
    /// The token-bucket burst exceeds the bounded queue, so admitted
    /// bursts overflow into queue-full rejections.
    pub const BURST_EXCEEDS_QUEUE: &str = "ANZ105";
    /// A geo federation with a single region: it executes, but every
    /// routing policy degenerates to that region and the WAN model
    /// never engages.
    pub const GEO_DEGENERATE: &str = "ANZ106";

    /// Disaggregated serving was requested but the plan fell back to a
    /// colocated deployment.
    pub const DISAGG_FALLBACK: &str = "ANZ201";
    /// A disaggregated prefill/decode pair cannot share a node.
    pub const DISAGG_CROSS_NODE: &str = "ANZ202";
    /// Predicted admission shed-rate floor under the offered load.
    pub const SHED_FLOOR: &str = "ANZ203";
    /// One archetype of a tenant exceeds its deadline (others fit).
    pub const ARCHETYPE_OVER_DEADLINE: &str = "ANZ204";
    /// A knob the selected execution mode ignores.
    pub const IGNORED_KNOB: &str = "ANZ205";
    /// An open-loop knob the geo federation layer overrides (cell
    /// layout comes from the per-region specs, not `shards`).
    pub const GEO_IGNORED_KNOB: &str = "ANZ206";
}

/// How bad a finding is. Ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Advisory — nothing wrong, but worth knowing.
    Info,
    /// The scenario executes but is predicted to misbehave.
    Warning,
    /// The scenario cannot execute.
    Error,
}

impl Severity {
    /// Lowercase label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One typed preflight finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable code (`ANZ001`…, see [`codes`]).
    pub code: String,
    /// Severity class.
    pub severity: Severity,
    /// Dotted pseudo-path into the scenario spec the finding anchors to
    /// (e.g. `mode.OpenLoop.admission.burst`).
    pub path: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when the analyzer has a concrete idea.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    fn new(severity: Severity, code: &str, path: &str, message: impl Into<String>) -> Self {
        Diagnostic {
            code: code.into(),
            severity,
            path: path.into(),
            message: message.into(),
            suggestion: None,
        }
    }

    fn error(code: &str, path: &str, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Error, code, path, message)
    }

    fn warning(code: &str, path: &str, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Warning, code, path, message)
    }

    fn info(code: &str, path: &str, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Info, code, path, message)
    }

    fn suggest(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }

    /// One rendered line (`severity[code] path: message`).
    pub fn render(&self) -> String {
        let mut line = format!(
            "{}[{}] {}: {}",
            self.severity.label(),
            self.code,
            self.path,
            self.message
        );
        if let Some(s) = &self.suggestion {
            line.push_str(&format!("\n  help: {s}"));
        }
        line
    }
}

/// Everything [`analyze`] found for one scenario, worst first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// The analyzed scenario's label.
    pub label: String,
    /// Findings, sorted by severity (errors first), then code and path.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Whether any error-severity finding exists.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether any warning-severity finding exists.
    pub fn has_warnings(&self) -> bool {
        self.warnings().next().is_some()
    }

    /// The worst severity present, if any finding exists at all.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Human-readable rendering, one finding per line (empty string for
    /// a clean report).
    pub fn render_human(&self) -> String {
        self.diagnostics
            .iter()
            .map(Diagnostic::render)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Statically analyzes a scenario against the stock agent library and
/// workload catalog, without executing it.
///
/// Builds a throwaway [`Runtime`] for the scenario's seed and cluster;
/// when a live [`Session`](crate::scenario::Session) exists, prefer
/// [`Session::analyze`](crate::scenario::Session::analyze), which
/// reuses the session's runtime and catalog.
pub fn analyze(scenario: &Scenario) -> AnalysisReport {
    let runtime = Runtime::with_shape(
        scenario.seed,
        scenario.cluster.shape.clone(),
        scenario.cluster.nodes,
    );
    analyze_with(scenario, &WorkloadCatalog::stock(), &runtime)
}

/// The full analysis pass against a caller-supplied catalog and runtime.
pub(crate) fn analyze_with(
    scenario: &Scenario,
    catalog: &WorkloadCatalog,
    runtime: &Runtime,
) -> AnalysisReport {
    let mut diags = scenario_structural(scenario);
    // Deep (planning/capacity/SLO/load) checks interpret the spec, so
    // they only run once the structure is sound.
    if !diags.iter().any(|d| d.severity == Severity::Error) {
        deep_diags(scenario, catalog, runtime, &mut diags);
    }
    diags.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.code.cmp(&b.code))
            .then_with(|| a.path.cmp(&b.path))
    });
    AnalysisReport {
        label: scenario.label.clone(),
        diagnostics: diags,
    }
}

/// Maps the first error-severity diagnostic (in emission order) to the
/// typed error the legacy `validate` surfaces returned.
pub(crate) fn first_error(diags: &[Diagnostic]) -> Result<(), SimError> {
    match diags.iter().find(|d| d.severity == Severity::Error) {
        Some(d) => Err(SimError::InvalidInput(format!(
            "{} [{} at {}]",
            d.message, d.code, d.path
        ))),
        None => Ok(()),
    }
}

// ---------------------------------------------------------------------------
// Structural rules (shared with the validate() wrappers)
// ---------------------------------------------------------------------------

/// Rules behind [`RunOptions::validate`].
pub(crate) fn run_options_diags(opts: &RunOptions) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if opts.parallelism == 0 {
        out.push(
            Diagnostic::error(
                codes::BAD_NUMERIC,
                "parallelism",
                "parallelism must be at least 1",
            )
            .suggest("set parallelism to a positive stage fan-out"),
        );
    }
    for (i, &(at_s, node)) in opts.preemptions.iter().enumerate() {
        if !at_s.is_finite() || at_s < 0.0 {
            out.push(Diagnostic::error(
                codes::BAD_NUMERIC,
                &format!("preemptions[{i}].at_s"),
                format!(
                    "preemption instant must be a finite non-negative number \
                     of seconds, got {at_s} (node {node})"
                ),
            ));
        }
    }
    out
}

/// Rules behind [`FleetOptions::validate`] (numeric knobs only; the
/// admission, process and tenant rules are scenario-level because the
/// legacy serve path validates them further downstream).
pub(crate) fn fleet_options_diags(opts: &FleetOptions) -> Vec<Diagnostic> {
    let mut out = open_loop_numeric_diags(
        opts.horizon_s,
        opts.rebalance_every_s,
        opts.shards,
        opts.max_inflight,
        "",
    );
    if opts.parallelism == 0 {
        out.push(Diagnostic::error(
            codes::BAD_NUMERIC,
            "parallelism",
            "parallelism must be at least 1",
        ));
    }
    if opts.threads == 0 {
        out.push(Diagnostic::error(
            codes::BAD_NUMERIC,
            "threads",
            "threads must be at least 1 (1 steps cells inline)",
        ));
    }
    out
}

/// Rules behind [`OpenLoopSpec::validate`].
pub(crate) fn open_loop_spec_diags(spec: &OpenLoopSpec, prefix: &str) -> Vec<Diagnostic> {
    let mut out = open_loop_numeric_diags(
        spec.horizon_s,
        spec.rebalance_every_s,
        spec.shards,
        spec.max_inflight,
        prefix,
    );
    if spec.threads == Some(0) {
        out.push(Diagnostic::error(
            codes::BAD_NUMERIC,
            &format!("{prefix}threads"),
            "threads must be at least 1 (1 steps cells inline)",
        ));
    }
    out
}

fn open_loop_numeric_diags(
    horizon_s: f64,
    rebalance_every_s: f64,
    shards: usize,
    max_inflight: usize,
    prefix: &str,
) -> Vec<Diagnostic> {
    let path = |field: &str| format!("{prefix}{field}");
    let mut out = Vec::new();
    if !horizon_s.is_finite() || horizon_s <= 0.0 {
        out.push(Diagnostic::error(
            codes::BAD_NUMERIC,
            &path("horizon_s"),
            format!("arrival horizon must be a finite positive number of seconds, got {horizon_s}"),
        ));
    }
    if !rebalance_every_s.is_finite() || rebalance_every_s <= 0.0 {
        out.push(Diagnostic::error(
            codes::BAD_NUMERIC,
            &path("rebalance_every_s"),
            format!(
                "rebalance cadence must be a finite positive number of seconds, \
                 got {rebalance_every_s}"
            ),
        ));
    }
    if shards == 0 {
        out.push(Diagnostic::error(
            codes::BAD_NUMERIC,
            &path("shards"),
            "fleet needs at least one shard",
        ));
    }
    if max_inflight == 0 {
        out.push(Diagnostic::error(
            codes::BAD_NUMERIC,
            &path("max_inflight"),
            "max_inflight must be at least 1",
        ));
    }
    out
}

/// Tenant-set sanity: positive weight mass, drawable mixes, positive
/// deadlines. Shared by the `Mix` and `Traffic` sources.
fn tenant_diags(tenants: &[TenantProfile], prefix: &str, out: &mut Vec<Diagnostic>) {
    let mut weight_sum = 0.0;
    for (i, t) in tenants.iter().enumerate() {
        let path = |field: &str| format!("{prefix}[{i}].{field}");
        if !t.weight.is_finite() || t.weight < 0.0 {
            out.push(Diagnostic::error(
                codes::WORKLOAD_DEGENERATE,
                &path("weight"),
                format!(
                    "tenant `{}` weight must be finite and non-negative, got {}",
                    t.name, t.weight
                ),
            ));
        } else {
            weight_sum += t.weight;
        }
        let weights = t.mix.weights();
        let bad = weights.iter().any(|&(_, w)| !w.is_finite() || w < 0.0);
        let dead = !weights.iter().any(|&(_, w)| w > 0.0);
        if bad || dead {
            out.push(Diagnostic::error(
                codes::WORKLOAD_DEGENERATE,
                &path("mix"),
                format!(
                    "tenant `{}` mix needs non-negative weights with at least \
                     one positive entry",
                    t.name
                ),
            ));
        }
        if !t.class.deadline_s.is_finite() || t.class.deadline_s <= 0.0 {
            out.push(Diagnostic::error(
                codes::WORKLOAD_DEGENERATE,
                &path("class.deadline_s"),
                format!(
                    "tenant `{}` SLO deadline must be finite and positive, got {}",
                    t.name, t.class.deadline_s
                ),
            ));
        }
    }
    if !tenants.is_empty() && weight_sum <= 0.0 {
        out.push(Diagnostic::error(
            codes::WORKLOAD_DEGENERATE,
            prefix,
            "tenant weights must sum positive",
        ));
    }
}

/// The admission-config rules as diagnostics (the rule set itself lives
/// in [`AdmissionConfig::validate`]).
fn admission_diags(cfg: &AdmissionConfig, prefix: &str, out: &mut Vec<Diagnostic>) {
    if let Err(SimError::InvalidInput(msg)) = cfg.validate() {
        out.push(
            Diagnostic::error(codes::ADMISSION_INVALID, prefix, msg)
                .suggest("fix the admission parameters or disable admission"),
        );
    }
}

/// Every structural rule over the spec itself — the analyzer's
/// error-severity backbone and the body of [`Scenario::validate`].
pub(crate) fn scenario_structural(scenario: &Scenario) -> Vec<Diagnostic> {
    let mut out = run_options_diags(&scenario.run_options());
    if scenario.cluster.nodes == 0 {
        out.push(
            Diagnostic::error(
                codes::CLUSTER_EMPTY,
                "cluster.nodes",
                "cluster needs at least one node",
            )
            .suggest("provision at least one node"),
        );
    }
    match &scenario.workload {
        WorkloadSource::Catalog { entries } if entries.is_empty() => {
            out.push(Diagnostic::error(
                codes::WORKLOAD_DEGENERATE,
                "workload.Catalog.entries",
                "catalog workload needs at least one entry",
            ));
        }
        WorkloadSource::Jobs { jobs } if jobs.is_empty() => {
            out.push(Diagnostic::error(
                codes::WORKLOAD_DEGENERATE,
                "workload.Jobs.jobs",
                "explicit workload needs at least one job",
            ));
        }
        WorkloadSource::Mix { tenants, requests } => {
            if tenants.is_empty() {
                out.push(Diagnostic::error(
                    codes::WORKLOAD_DEGENERATE,
                    "workload.Mix.tenants",
                    "mix needs tenants",
                ));
            }
            if *requests == 0 {
                out.push(Diagnostic::error(
                    codes::WORKLOAD_DEGENERATE,
                    "workload.Mix.requests",
                    "mix needs at least one request",
                ));
            }
            tenant_diags(tenants, "workload.Mix.tenants", &mut out);
        }
        WorkloadSource::Traffic { process, tenants } => {
            if tenants.is_empty() {
                out.push(Diagnostic::error(
                    codes::WORKLOAD_DEGENERATE,
                    "workload.Traffic.tenants",
                    "traffic needs tenants",
                ));
            }
            tenant_diags(tenants, "workload.Traffic.tenants", &mut out);
            if let Err(SimError::InvalidInput(msg)) = process.validate() {
                out.push(Diagnostic::error(
                    codes::ARRIVALS_INVALID,
                    "workload.Traffic.process",
                    msg,
                ));
            }
        }
        _ => {}
    }
    match (&scenario.mode, &scenario.workload) {
        (ExecutionMode::ClosedLoop, WorkloadSource::Traffic { .. }) => {
            out.push(
                Diagnostic::error(
                    codes::MODE_MISMATCH,
                    "mode",
                    "an arrival-process workload needs ExecutionMode::OpenLoop",
                )
                .suggest("switch to ExecutionMode::OpenLoop or pick a closed-loop source"),
            );
        }
        (ExecutionMode::OpenLoop(_), source)
            if !matches!(source, WorkloadSource::Traffic { .. }) =>
        {
            out.push(
                Diagnostic::error(
                    codes::MODE_MISMATCH,
                    "mode",
                    "open-loop execution needs a WorkloadSource::Traffic workload",
                )
                .suggest("switch to ExecutionMode::ClosedLoop or supply a traffic source"),
            );
        }
        (ExecutionMode::OpenLoop(spec), _) => {
            out.extend(open_loop_spec_diags(spec, "mode.OpenLoop."));
            admission_diags(&spec.admission, "mode.OpenLoop.admission", &mut out);
            if spec.shards > scenario.cluster.nodes && scenario.cluster.nodes > 0 {
                out.push(
                    Diagnostic::error(
                        codes::SHARDS_EXCEED_NODES,
                        "mode.OpenLoop.shards",
                        format!(
                            "{} engine cells cannot partition {} cluster node(s)",
                            spec.shards, scenario.cluster.nodes
                        ),
                    )
                    .suggest("reduce shards or add nodes"),
                );
            }
            if !scenario.preemptions.is_empty() {
                out.push(Diagnostic::info(
                    codes::IGNORED_KNOB,
                    "preemptions",
                    "open-loop serving ignores the preemption schedule",
                ));
            }
        }
        _ => {}
    }
    if let Some(geo) = &scenario.geo {
        for (path, msg) in geo.problems() {
            out.push(Diagnostic::error(codes::GEO_INVALID, &path, msg));
        }
        if matches!(scenario.mode, ExecutionMode::ClosedLoop) {
            out.push(
                Diagnostic::error(
                    codes::GEO_MODE_MISMATCH,
                    "geo",
                    "multi-region federation needs ExecutionMode::OpenLoop",
                )
                .suggest("switch to ExecutionMode::OpenLoop or drop the geo spec"),
            );
        }
        let spot: usize = geo.regions.iter().map(|r| r.spot_nodes).sum();
        let footprint = geo.total_nodes() + if geo.elastic.is_some() { spot } else { 0 };
        if footprint > 0 && scenario.cluster.nodes != footprint {
            out.push(
                Diagnostic::error(
                    codes::GEO_NODES_MISMATCH,
                    "cluster.nodes",
                    format!(
                        "cluster has {} node(s) but the geo footprint is {} \
                         ({} on-demand{})",
                        scenario.cluster.nodes,
                        footprint,
                        geo.total_nodes(),
                        if geo.elastic.is_some() {
                            format!(" + {spot} spot")
                        } else {
                            String::new()
                        }
                    ),
                )
                .suggest("set cluster.nodes to the sum of every region's nodes"),
            );
        }
        if geo.elastic.is_some() {
            for (i, r) in geo.regions.iter().enumerate() {
                let cell_nodes = (r.nodes / r.shards.max(1)).max(1);
                if r.spot_nodes % cell_nodes != 0 {
                    out.push(
                        Diagnostic::warning(
                            codes::GEO_DEGENERATE,
                            &format!("geo.regions[{i}].spot_nodes"),
                            format!(
                                "spot pool of {} node(s) materializes {} cell(s) of {} node(s); \
                                 {} node(s) stay idle",
                                r.spot_nodes,
                                r.spot_nodes / cell_nodes,
                                cell_nodes,
                                r.spot_nodes % cell_nodes
                            ),
                        )
                        .suggest("size spot_nodes as a multiple of the region's cell size"),
                    );
                }
            }
        }
        if geo.regions.len() == 1 {
            out.push(
                Diagnostic::warning(
                    codes::GEO_DEGENERATE,
                    "geo.regions",
                    "a single-region federation never engages the WAN model",
                )
                .suggest("add regions or drop the geo spec"),
            );
        }
        if let ExecutionMode::OpenLoop(spec) = &scenario.mode {
            if spec.shards != 1 {
                out.push(Diagnostic::info(
                    codes::GEO_IGNORED_KNOB,
                    "mode.OpenLoop.shards",
                    "geo federation lays out cells per region; the global shards knob is ignored",
                ));
            }
        }
    }
    if matches!(scenario.mode, ExecutionMode::ClosedLoop) {
        for (i, p) in scenario.preemptions.iter().enumerate() {
            if p.node >= scenario.cluster.nodes && scenario.cluster.nodes > 0 {
                out.push(
                    Diagnostic::error(
                        codes::BAD_NUMERIC,
                        &format!("preemptions[{i}].node"),
                        format!(
                            "preemption targets node {} but the cluster has {} node(s)",
                            p.node, scenario.cluster.nodes
                        ),
                    )
                    .suggest("preempt a node index below cluster.nodes"),
                );
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Deep checks: planning, capacity, SLO and load feasibility
// ---------------------------------------------------------------------------

fn deep_diags(
    scenario: &Scenario,
    catalog: &WorkloadCatalog,
    runtime: &Runtime,
    out: &mut Vec<Diagnostic>,
) {
    match &scenario.mode {
        ExecutionMode::ClosedLoop => closed_loop_deep(scenario, catalog, runtime, out),
        ExecutionMode::OpenLoop(spec) => {
            let WorkloadSource::Traffic { process, tenants } = &scenario.workload else {
                return; // structural ANZ003 already fired
            };
            open_loop_deep(scenario, spec, process, tenants, runtime, out);
        }
    }
}

/// Decomposes and expands one job, reporting failures as `ANZ009`.
fn plan_job(
    job: &Job,
    inputs: &JobInputs,
    path: &str,
    runtime: &Runtime,
    out: &mut Vec<Diagnostic>,
) -> Option<(murakkab_orchestrator::LogicalPlan, TaskGraph)> {
    let plan = match Planner.decompose(job, runtime.library()) {
        Ok((plan, _)) => plan,
        Err(e) => {
            out.push(Diagnostic::error(
                codes::PLAN_FAILED,
                path,
                format!("job does not decompose: {e}"),
            ));
            return None;
        }
    };
    match expand(&plan, inputs) {
        Ok(graph) => Some((plan, graph)),
        Err(e) => {
            out.push(Diagnostic::error(
                codes::PLAN_FAILED,
                path,
                format!("plan does not expand against its inputs: {e}"),
            ));
            None
        }
    }
}

/// Shared route selection, mapping failures to `ANZ009`/`ANZ010`.
fn select_or_report(
    runtime: &Runtime,
    cluster: murakkab_cluster::ClusterManager,
    cap_archetypes: &BTreeMap<Capability, Vec<String>>,
    constraints: &ConstraintSet,
    opts: &RunOptions,
    out: &mut Vec<Diagnostic>,
) -> Option<RoutePlan> {
    let mut stats = cluster.stats(SimTime::ZERO);
    match runtime.select_routes(cap_archetypes, constraints, &mut stats, opts) {
        Ok(plan) => Some(plan),
        Err(SimError::Unsatisfiable(msg)) => {
            out.push(
                Diagnostic::error(codes::CONSTRAINTS_UNSATISFIABLE, "constraints", msg)
                    .suggest("relax the quality floor / bounds or enlarge the cluster"),
            );
            None
        }
        Err(e) => {
            out.push(Diagnostic::error(
                codes::PLAN_FAILED,
                "constraints",
                format!("route selection failed: {e}"),
            ));
            None
        }
    }
}

fn closed_loop_deep(
    scenario: &Scenario,
    catalog: &WorkloadCatalog,
    runtime: &Runtime,
    out: &mut Vec<Diagnostic>,
) {
    // Resolve the job list exactly like `Session::closed_loop_jobs`.
    let mut jobs: Vec<(Job, JobInputs)> = Vec::new();
    match &scenario.workload {
        WorkloadSource::Catalog { entries } => {
            for (i, r) in entries.iter().enumerate() {
                match catalog.get(&r.entry) {
                    Ok(entry) => {
                        let params = WorkloadParams {
                            seed: scenario.seed,
                            size: r.size.unwrap_or(entry.default_size),
                            user: r.user.clone().unwrap_or_else(|| entry.default_user.clone()),
                        };
                        jobs.push(entry.build(&params));
                    }
                    Err(_) => out.push(
                        Diagnostic::error(
                            codes::UNKNOWN_CATALOG_ENTRY,
                            &format!("workload.Catalog.entries[{i}]"),
                            format!("no workload named `{}` is registered", r.entry),
                        )
                        .suggest("pick a registered entry or register a custom one"),
                    ),
                }
            }
        }
        WorkloadSource::Jobs { jobs: specs } => {
            jobs.extend(specs.iter().map(|s| (s.job.clone(), s.inputs.clone())));
        }
        WorkloadSource::Mix { tenants, requests } => {
            match sample_mix_jobs(scenario.seed, tenants, *requests) {
                Ok(sampled) => jobs = sampled,
                Err(e) => out.push(Diagnostic::error(
                    codes::WORKLOAD_DEGENERATE,
                    "workload.Mix",
                    format!("mix does not sample: {e}"),
                )),
            }
        }
        WorkloadSource::Traffic { .. } => return, // structural ANZ003 already fired
    }
    if out.iter().any(|d| d.severity == Severity::Error) {
        return;
    }

    let mut cap_archetypes: BTreeMap<Capability, Vec<String>> = BTreeMap::new();
    let mut constraints = ConstraintSet::new();
    let mut graphs: Vec<(String, TaskGraph)> = Vec::new();
    for (i, (job, inputs)) in jobs.iter().enumerate() {
        let path = format!("workload[{i}]");
        let Some((plan, graph)) = plan_job(job, inputs, &path, runtime, out) else {
            continue;
        };
        for c in job.constraints.all() {
            constraints = constraints.and(*c);
        }
        for cap in plan.capabilities() {
            cap_archetypes
                .entry(cap)
                .or_default()
                .push(plan.archetype.clone());
        }
        graphs.push((path, graph));
    }
    for &c in &scenario.constraints {
        constraints = constraints.and(c);
    }
    if out.iter().any(|d| d.severity == Severity::Error) {
        return;
    }

    let opts = scenario.run_options();
    let Some(route_plan) = select_or_report(
        runtime,
        runtime.build_cluster(),
        &cap_archetypes,
        &constraints,
        &opts,
        out,
    ) else {
        return;
    };
    capacity_diags(
        &route_plan.routes,
        &scenario.cluster.shape,
        scenario.cluster.nodes,
        scenario.serving,
        out,
    );

    // A LatencyUnder bound below the idle-system critical path can never
    // be met, regardless of scheduling.
    if let Some(bound) = constraints.latency_bound() {
        let bound_s = bound.as_secs_f64();
        for (path, graph) in &graphs {
            let Ok(est) = estimate_service_s(graph, &route_plan.routes, runtime.library()) else {
                continue;
            };
            if est > bound_s {
                out.push(
                    Diagnostic::warning(
                        codes::SLO_INFEASIBLE,
                        path,
                        format!(
                            "critical-path service estimate {est:.1}s exceeds the \
                             {bound_s:.1}s latency bound"
                        ),
                    )
                    .suggest("raise the LatencyUnder bound or shrink the workload"),
                );
            }
        }
    }
}

fn open_loop_deep(
    scenario: &Scenario,
    spec: &OpenLoopSpec,
    process: &ArrivalProcess,
    tenants: &[TenantProfile],
    runtime: &Runtime,
    out: &mut Vec<Diagnostic>,
) {
    // Mirror `serve_inner`: one route selection over every archetype the
    // tenant set can emit, against a single cell's capacity.
    let archetypes: Vec<Archetype> = Archetype::ALL
        .into_iter()
        .filter(|a| {
            tenants
                .iter()
                .any(|t| t.mix.weights().iter().any(|&(m, w)| m == *a && w > 0.0))
        })
        .collect();
    let mut cap_archetypes: BTreeMap<Capability, Vec<String>> = BTreeMap::new();
    let mut constraints = ConstraintSet::new();
    for &arch in &archetypes {
        let job = canonical_job(arch);
        let (plan, _) = match Planner.decompose(&job, runtime.library()) {
            Ok(p) => p,
            Err(e) => {
                out.push(Diagnostic::error(
                    codes::PLAN_FAILED,
                    "workload.Traffic.tenants",
                    format!("archetype {arch:?} does not decompose: {e}"),
                ));
                continue;
            }
        };
        for c in job.constraints.all() {
            constraints = constraints.and(*c);
        }
        for cap in plan.capabilities() {
            cap_archetypes
                .entry(cap)
                .or_default()
                .push(plan.archetype.clone());
        }
    }
    for &c in &scenario.constraints {
        constraints = constraints.and(c);
    }
    if out.iter().any(|d| d.severity == Severity::Error) {
        return;
    }

    let run_opts = RunOptions::labeled(&scenario.label)
        .parallelism(scenario.parallelism)
        .pin_paper_agents(false)
        .serving(scenario.serving)
        .workflow_aware(scenario.workflow_aware);
    let cells = match runtime.build_cluster().partition(spec.shards) {
        Ok(cells) => cells,
        Err(e) => {
            out.push(Diagnostic::error(
                codes::SHARDS_EXCEED_NODES,
                "mode.OpenLoop.shards",
                format!("cluster does not partition into {} cells: {e}", spec.shards),
            ));
            return;
        }
    };
    // The smallest cell is the capacity worst case; equal slices select
    // identical routes anyway.
    let smallest = cells
        .into_iter()
        .min_by_key(|c| c.nodes().len())
        .expect("partition yields at least one cell");
    let cell_nodes = smallest.nodes().len();
    let Some(route_plan) = select_or_report(
        runtime,
        smallest,
        &cap_archetypes,
        &constraints,
        &run_opts,
        out,
    ) else {
        return;
    };
    capacity_diags(
        &route_plan.routes,
        &scenario.cluster.shape,
        cell_nodes,
        scenario.serving,
        out,
    );

    // Per-(tenant, archetype) idle-system service estimates: the SLO
    // lower bound and the load model both build on them.
    let rng = SimRng::new(scenario.seed).fork("preflight");
    let mut est: BTreeMap<(usize, Archetype), f64> = BTreeMap::new();
    for (ti, tenant) in tenants.iter().enumerate() {
        for &(arch, w) in tenant.mix.weights() {
            if w <= 0.0 {
                continue;
            }
            let mut job_rng = rng.fork(&format!("est/{}/{arch:?}", tenant.name));
            let (job, inputs) = fleet_job(arch, &tenant.name, &mut job_rng);
            let path = format!("workload.Traffic.tenants[{ti}]");
            let Some((_, graph)) = plan_job(&job, &inputs, &path, runtime, out) else {
                continue;
            };
            let Ok(e) = estimate_service_s(&graph, &route_plan.routes, runtime.library()) else {
                continue;
            };
            est.insert((ti, arch), e);
        }
    }

    // SLO feasibility: a tenant whose *every* archetype estimates above
    // its deadline can never be served within SLO (the admission
    // deadline gate rejects at zero backlog already); single archetypes
    // over the line are advisory.
    for (ti, tenant) in tenants.iter().enumerate() {
        let ests: Vec<(Archetype, f64)> = est
            .iter()
            .filter(|((i, _), _)| *i == ti)
            .map(|(&(_, a), &e)| (a, e))
            .collect();
        if ests.is_empty() {
            continue;
        }
        let deadline = tenant.class.deadline_s;
        let over: Vec<&(Archetype, f64)> = ests.iter().filter(|(_, e)| *e > deadline).collect();
        let path = format!("workload.Traffic.tenants[{ti}].class.deadline_s");
        if over.len() == ests.len() {
            let min = ests.iter().map(|(_, e)| *e).fold(f64::INFINITY, f64::min);
            out.push(
                Diagnostic::warning(
                    codes::SLO_INFEASIBLE,
                    &path,
                    format!(
                        "tenant `{}` can never meet its {deadline}s deadline: the \
                         cheapest archetype estimates {min:.1}s of critical-path service",
                        tenant.name
                    ),
                )
                .suggest("raise the deadline, lighten the mix or add capacity"),
            );
        } else {
            for (arch, e) in over {
                out.push(Diagnostic::info(
                    codes::ARCHETYPE_OVER_DEADLINE,
                    &path,
                    format!(
                        "tenant `{}` archetype {arch:?} estimates {e:.1}s against a \
                         {deadline}s deadline; those requests will shed",
                        tenant.name
                    ),
                ));
            }
        }
    }

    // Offered load vs aggregate capacity. Throughput is bounded by the
    // in-flight budget over the mean critical-path service time — a
    // deliberately optimistic bound (no contention), so exceeding it is
    // a guaranteed overload, not a maybe.
    let lambda = process.mean_rate_per_s();
    let weight_sum: f64 = tenants.iter().map(|t| t.weight).sum();
    let mut mean_service = 0.0;
    for (ti, tenant) in tenants.iter().enumerate() {
        let mix_sum: f64 = tenant.mix.weights().iter().map(|&(_, w)| w).sum();
        if mix_sum <= 0.0 || weight_sum <= 0.0 {
            continue;
        }
        for &(arch, w) in tenant.mix.weights() {
            if let Some(e) = est.get(&(ti, arch)) {
                mean_service += (tenant.weight / weight_sum) * (w / mix_sum) * e;
            }
        }
    }
    if lambda > 0.0 && mean_service > 0.0 {
        let capacity_rate = spec.max_inflight as f64 / mean_service;
        let admission = &spec.admission;
        if !admission.enabled && lambda > capacity_rate {
            out.push(
                Diagnostic::warning(
                    codes::OVERLOAD_UNBOUNDED,
                    "mode.OpenLoop.admission.enabled",
                    format!(
                        "offered load {lambda:.3}/s exceeds the ~{capacity_rate:.3}/s \
                         service capacity with admission disabled; the backlog grows \
                         without bound"
                    ),
                )
                .suggest("enable admission control or add capacity"),
            );
        }
        if admission.enabled {
            let admit_cap = admission.rate_per_s.min(capacity_rate);
            if lambda > admit_cap {
                let floor = 1.0 - admit_cap / lambda;
                out.push(Diagnostic::info(
                    codes::SHED_FLOOR,
                    "workload.Traffic.process",
                    format!(
                        "offered load {lambda:.3}/s exceeds the {admit_cap:.3}/s \
                         admission capacity; at least ~{:.0}% of requests will shed",
                        floor * 100.0
                    ),
                ));
            }
        }
    }
    if spec.admission.enabled && spec.admission.burst > spec.admission.max_queue as f64 {
        out.push(
            Diagnostic::warning(
                codes::BURST_EXCEEDS_QUEUE,
                "mode.OpenLoop.admission.burst",
                format!(
                    "token burst {} exceeds the {}-deep bounded queue; bursts the \
                     bucket admits overflow into queue-full rejections",
                    spec.admission.burst, spec.admission.max_queue
                ),
            )
            .suggest("lower burst below max_queue or deepen the queue"),
        );
    }
}

/// Placement and capacity feasibility of a selected route set against
/// one cell of `cell_nodes` nodes of `shape`.
fn capacity_diags(
    routes: &BTreeMap<Capability, RouteSpec>,
    shape: &VmShape,
    cell_nodes: usize,
    requested: ServingMode,
    out: &mut Vec<Diagnostic>,
) {
    let per_node = shape.gpu_count;
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut gpu_demand = 0.0f64;
    for route in routes.values() {
        match route {
            RouteSpec::Endpoint { agent, backend } => {
                if !seen.insert(agent.as_str()) {
                    continue; // endpoints are deduplicated per model
                }
                let path = format!("routes.{agent}");
                let (prefill, decode) = backend.phase_gpus();
                let largest_group = match backend.mode() {
                    ServingMode::Colocated => backend.gpus_total(),
                    ServingMode::Disaggregated => prefill.max(decode),
                };
                if largest_group > per_node {
                    out.push(
                        Diagnostic::warning(
                            codes::NO_PLACEMENT,
                            &path,
                            format!(
                                "endpoint needs a {largest_group}-GPU group but nodes \
                                 have {per_node} GPU(s); no placement fits the model \
                                 plus its KV working set"
                            ),
                        )
                        .suggest("use a larger VM shape or a smaller model"),
                    );
                } else if backend.mode() == ServingMode::Disaggregated
                    && prefill + decode > per_node
                {
                    out.push(Diagnostic::info(
                        codes::DISAGG_CROSS_NODE,
                        &path,
                        format!(
                            "prefill ({prefill}) + decode ({decode}) GPUs exceed one \
                             node's {per_node}; the pair places across nodes and KV \
                             transfers cross the slower interconnect"
                        ),
                    ));
                }
                if requested == ServingMode::Disaggregated
                    && backend.mode() == ServingMode::Colocated
                {
                    out.push(Diagnostic::info(
                        codes::DISAGG_FALLBACK,
                        &path,
                        "disaggregated serving was requested but the GPU budget \
                         cannot hold a prefill/decode pair; falling back to colocated",
                    ));
                }
                gpu_demand += f64::from(backend.gpus_total());
            }
            RouteSpec::Pool { agent, workers } => {
                for w in workers {
                    if w.gpu_units() > f64::from(per_node) {
                        out.push(Diagnostic::warning(
                            codes::NO_PLACEMENT,
                            &format!("routes.{agent}"),
                            format!(
                                "pool worker needs {} GPU(s) but nodes have {per_node}",
                                w.gpu_units()
                            ),
                        ));
                    }
                }
                gpu_demand += workers.iter().map(HardwareTarget::gpu_units).sum::<f64>();
            }
            RouteSpec::External { .. } => {}
        }
    }
    let cell_gpus = f64::from(per_node) * cell_nodes as f64;
    if gpu_demand > cell_gpus {
        out.push(
            Diagnostic::warning(
                codes::CAPACITY_EXCEEDED,
                "cluster",
                format!(
                    "selected routes demand {gpu_demand:.1} GPUs but the \
                     {cell_nodes}-node cell offers {cell_gpus:.0}; placement will \
                     starve or fail outright"
                ),
            )
            .suggest("add nodes, reduce shards or relax the quality floor"),
        );
    }
}
