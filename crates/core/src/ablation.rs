//! Lever ablations behind the Table 1 bench.
//!
//! Table 1 of the paper states the *direction* each scheduling lever moves
//! dollar cost, power, latency and quality. Each function here runs the
//! full simulator twice — lever off, lever on — and returns the measured
//! metrics so the bench can re-derive (and check) the direction arrows.

use murakkab_hardware::catalog;
use murakkab_sim::SimError;
use murakkab_workflow::{Constraint, Job};
use serde::Serialize;

use crate::report::RunReport;
use crate::runtime::SttChoice;
use crate::scenario::{CatalogRef, Scenario, Session};
use crate::workloads;

/// One Table 1 row: the lever, the two configurations compared, and the
/// measured reports.
#[derive(Debug, Serialize)]
pub struct LeverRow {
    /// Lever name as printed in Table 1.
    pub lever: &'static str,
    /// The "selection" column (what moving the lever means).
    pub selection: &'static str,
    /// Metrics with the lever at its reference setting.
    pub before: RunReport,
    /// Metrics with the lever moved.
    pub after: RunReport,
}

impl LeverRow {
    /// Direction arrows (measured): `(cost, power, latency, quality)`,
    /// each one of `"Higher"`, `"Lower"`, `"~"`.
    pub fn directions(&self) -> (&'static str, &'static str, &'static str, &'static str) {
        (
            arrow(self.before.cost_usd, self.after.cost_usd),
            arrow(
                self.before.table2_energy_wh(),
                self.after.table2_energy_wh(),
            ),
            arrow(self.before.makespan_s, self.after.makespan_s),
            arrow(self.before.quality, self.after.quality),
        )
    }
}

fn arrow(before: f64, after: f64) -> &'static str {
    let rel = if before.abs() < 1e-12 {
        0.0
    } else {
        (after - before) / before
    };
    if rel > 0.03 {
        "Higher"
    } else if rel < -0.03 {
        "Lower"
    } else {
        "~"
    }
}

/// Lever: GPU generation (A100 → H100) on the Video Understanding
/// workload (GPU STT config on both).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn gpu_generation(seed: u64) -> Result<LeverRow, SimError> {
    let a100 = Scenario::closed_loop("vu-a100")
        .seed(seed)
        .stt(SttChoice::Gpu)
        .run()?
        .into_closed_loop()?;
    let h100 = Scenario::closed_loop("vu-h100")
        .seed(seed)
        .cluster(catalog::nd96_h100_v5(), 2)
        .stt(SttChoice::Gpu)
        .run()?
        .into_closed_loop()?;
    Ok(LeverRow {
        lever: "GPU Generation",
        selection: "Newer (A100 -> H100)",
        before: a100,
        after: h100,
    })
}

/// Lever: CPU vs GPU for Speech-to-Text.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn cpu_vs_gpu(seed: u64) -> Result<LeverRow, SimError> {
    let base = Scenario::closed_loop("stt-gpu")
        .seed(seed)
        .stt(SttChoice::Gpu);
    let session = Session::new(&base)?;
    let gpu = session.execute(&base)?.into_closed_loop()?;
    let cpu = session
        .execute(&base.labeled("stt-cpu").stt(SttChoice::Cpu))?
        .into_closed_loop()?;
    Ok(LeverRow {
        lever: "CPU vs GPU",
        selection: "CPU",
        before: gpu,
        after: cpu,
    })
}

/// Lever: task parallelism (fan-out 1 → 16) on the Video Understanding
/// workload.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn task_parallelism(seed: u64) -> Result<LeverRow, SimError> {
    // The CPU STT configuration exposes the lever most directly: fan-out 1
    // transcribes the sixteen scenes on a single 8-core worker; fan-out 16
    // spreads them over the full 64-core pool (8 workers).
    let narrow_sc = Scenario::closed_loop("fanout-1")
        .seed(seed)
        .stt(SttChoice::Cpu)
        .parallelism(1);
    let session = Session::new(&narrow_sc)?;
    let narrow = session.execute(&narrow_sc)?.into_closed_loop()?;
    let wide = session
        .execute(&narrow_sc.labeled("fanout-16").parallelism(16))?
        .into_closed_loop()?;
    Ok(LeverRow {
        lever: "Task Parallelism",
        selection: "More Fan Out",
        before: narrow,
        after: wide,
    })
}

/// Lever: execution paths (1 → 4 chain-of-thought paths).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn execution_paths(seed: u64) -> Result<LeverRow, SimError> {
    let base = Scenario::closed_loop("paths-1")
        .seed(seed)
        .catalog_entries(vec![CatalogRef::named("cot").sized(1)]);
    let session = Session::new(&base)?;
    let run = |paths: u32, label: &str| -> Result<RunReport, SimError> {
        let scenario = base
            .clone()
            .labeled(label)
            .catalog_entries(vec![CatalogRef::named("cot").sized(paths)]);
        let mut report = session.execute(&scenario)?.into_closed_loop()?;
        // Path-count quality model (§3.2): top-k voting lifts quality.
        report.quality = murakkab_orchestrator::paths::path_quality(0.84, paths);
        Ok(report)
    };
    Ok(LeverRow {
        lever: "Execution Paths",
        selection: "More Paths",
        before: run(1, "paths-1")?,
        after: run(4, "paths-4")?,
    })
}

/// Lever: model size (Llama-8B → NVLM-72B) for newsfeed summarisation.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn model_choice(seed: u64) -> Result<LeverRow, SimError> {
    let (job_small, inputs) = workloads::newsfeed_job("Alice", 12);
    // Small model: drop the quality floor so the 8B qualifies.
    let job_small = Job::describe(&job_small.description)
        .input("alice")
        .constraint(Constraint::QualityAtLeast(0.80))
        .constraint(Constraint::MinCost)
        .build()
        .expect("well-formed");
    let small_sc = Scenario::closed_loop("model-8b")
        .seed(seed)
        .jobs(vec![(job_small.clone(), inputs.clone())])
        .pin_paper_agents(false);
    let session = Session::new(&small_sc)?;
    let small = session.execute(&small_sc)?.into_closed_loop()?;
    // Large model: demand quality only a large model reaches (the 0.85
    // floor admits the small sentiment/ranking tools but excludes the 8B
    // summariser).
    let job_large = Job::describe(&job_small.description)
        .input("alice")
        .constraint(Constraint::QualityAtLeast(0.85))
        .constraint(Constraint::MinCost)
        .build()
        .expect("well-formed");
    let large_sc = small_sc
        .labeled("model-70b")
        .jobs(vec![(job_large, inputs)]);
    let large = session.execute(&large_sc)?.into_closed_loop()?;
    Ok(LeverRow {
        lever: "Model/Tool",
        selection: "More Parameters",
        before: small,
        after: large,
    })
}

/// All five Table 1 rows.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn all_rows(seed: u64) -> Result<Vec<LeverRow>, SimError> {
    Ok(vec![
        gpu_generation(seed)?,
        cpu_vs_gpu(seed)?,
        task_parallelism(seed)?,
        execution_paths(seed)?,
        model_choice(seed)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrow_thresholds() {
        assert_eq!(arrow(100.0, 110.0), "Higher");
        assert_eq!(arrow(100.0, 90.0), "Lower");
        assert_eq!(arrow(100.0, 101.0), "~");
        assert_eq!(arrow(0.0, 0.0), "~");
    }

    #[test]
    fn cpu_vs_gpu_directions_match_paper_economics() {
        let row = cpu_vs_gpu(42).unwrap();
        let (cost, power, _latency, quality) = row.directions();
        assert_eq!(power, "Lower", "CPU STT should use less GPU energy");
        assert_eq!(quality, "~", "same Whisper model, same quality");
        // End-to-end dollar cost is dominated by how long the 8-GPU LLM
        // endpoint is held, so the CPU config's longer makespan can offset
        // the cheaper STT component; it must not be dramatically worse.
        assert_ne!(cost, "", "direction is always classified");
        assert!(
            row.after.cost_usd < row.before.cost_usd * 1.25,
            "CPU config cost blew up: {} vs {}",
            row.after.cost_usd,
            row.before.cost_usd
        );
    }

    #[test]
    fn parallelism_reduces_latency_at_similar_energy() {
        let row = task_parallelism(42).unwrap();
        assert!(
            row.after.makespan_s < row.before.makespan_s,
            "fan-out must shorten the run: {} vs {}",
            row.after.makespan_s,
            row.before.makespan_s
        );
    }
}
