//! The declarative (Listing 2) programming model.
//!
//! The developer supplies a natural-language job description, the inputs,
//! optional sub-task hints and high-level constraints — and nothing else.
//! Model, tool and hardware choices are *absent by design*: they belong to
//! the orchestrator at runtime.

use serde::{Deserialize, Serialize};

use murakkab_sim::SimError;

use crate::constraint::{Constraint, ConstraintSet};

/// A declaratively specified job (Listing 2).
///
/// # Examples
///
/// ```
/// use murakkab_workflow::{Constraint, Job};
///
/// let job = Job::describe("List objects shown/mentioned in the videos")
///     .input("cats.mov")
///     .input("formula_1.mov")
///     .task("Extract frames from each video")
///     .task("Run speech-to-text on all scenes")
///     .task("Detect objects in the frames")
///     .constraint(Constraint::MinCost)
///     .build()
///     .unwrap();
/// assert_eq!(job.inputs.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Natural-language job description (`desc` in Listing 2).
    pub description: String,
    /// Input handles (file names, user ids, queries...).
    pub inputs: Vec<String>,
    /// Optional sub-task hints (`tasks=[t1, t2, t3]`).
    pub task_hints: Vec<String>,
    /// High-level constraints in priority order.
    pub constraints: ConstraintSet,
}

impl Job {
    /// Starts building a job from its description.
    pub fn describe(description: &str) -> JobBuilder {
        JobBuilder {
            description: description.to_string(),
            inputs: Vec::new(),
            task_hints: Vec::new(),
            constraints: ConstraintSet::new(),
        }
    }
}

/// Builder for [`Job`].
#[derive(Debug, Clone)]
pub struct JobBuilder {
    description: String,
    inputs: Vec<String>,
    task_hints: Vec<String>,
    constraints: ConstraintSet,
}

impl JobBuilder {
    /// Adds an input handle.
    #[must_use]
    pub fn input(mut self, handle: &str) -> Self {
        self.inputs.push(handle.to_string());
        self
    }

    /// Adds several input handles.
    #[must_use]
    pub fn inputs<I: IntoIterator<Item = S>, S: Into<String>>(mut self, handles: I) -> Self {
        self.inputs.extend(handles.into_iter().map(Into::into));
        self
    }

    /// Adds a sub-task hint.
    #[must_use]
    pub fn task(mut self, hint: &str) -> Self {
        self.task_hints.push(hint.to_string());
        self
    }

    /// Appends a constraint (priority = insertion order).
    #[must_use]
    pub fn constraint(mut self, c: Constraint) -> Self {
        self.constraints = self.constraints.and(c);
        self
    }

    /// Finishes the job.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidInput`] if the description is blank —
    /// the orchestrator LLM has nothing to decompose otherwise.
    pub fn build(self) -> Result<Job, SimError> {
        if self.description.trim().is_empty() {
            return Err(SimError::InvalidInput(
                "job description must not be empty".into(),
            ));
        }
        Ok(Job {
            description: self.description,
            inputs: self.inputs,
            task_hints: self.task_hints,
            constraints: self.constraints,
        })
    }
}

/// The paper's Listing 2: the same Video Understanding job, declaratively.
pub fn listing2_video_understanding() -> Job {
    Job::describe("List objects shown/mentioned in the videos")
        .input("cats.mov")
        .input("formula_1.mov")
        .task("Extract frames from each video")
        .task("Run speech-to-text on all scenes")
        .task("Detect objects in the frames")
        .constraint(Constraint::MinCost)
        .build()
        .expect("listing 2 is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use murakkab_agents::profile::Objective;

    #[test]
    fn listing2_matches_paper() {
        let job = listing2_video_understanding();
        assert_eq!(
            job.description,
            "List objects shown/mentioned in the videos"
        );
        assert_eq!(job.inputs, vec!["cats.mov", "formula_1.mov"]);
        assert_eq!(job.task_hints.len(), 3);
        assert_eq!(job.constraints.primary_objective(), Objective::Cost);
    }

    #[test]
    fn blank_description_rejected() {
        assert!(Job::describe("  ").build().is_err());
    }

    #[test]
    fn builder_accumulates_in_order() {
        let job = Job::describe("do things")
            .inputs(["a", "b"])
            .task("t1")
            .constraint(Constraint::QualityAtLeast(0.95))
            .constraint(Constraint::MinPower)
            .build()
            .unwrap();
        assert_eq!(job.inputs, vec!["a", "b"]);
        assert_eq!(job.constraints.primary_objective(), Objective::Power);
        assert_eq!(job.constraints.quality_floor(), 0.95);
    }

    #[test]
    fn jobs_serialize() {
        let job = listing2_video_understanding();
        let json = serde_json::to_string(&job).unwrap();
        let back: Job = serde_json::from_str(&json).unwrap();
        assert_eq!(back, job);
    }
}
