//! The task-graph intermediate representation.
//!
//! "It also identifies the relationship between tasks and generates the
//! corresponding internal representation as a directed acyclic graph (DAG)
//! where the nodes represent agents, and edges represent dataflow between
//! them" (§3.1). Nodes here are task *instances* — e.g. "transcribe scene 7
//! of formula_1.mov" — so the scheduler can exploit instance-level
//! parallelism directly.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use serde::{Deserialize, Serialize};

use murakkab_agents::{Capability, Work};
use murakkab_hardware::HardwareTarget;
use murakkab_sim::{define_id, SimDuration, SimError};

define_id!(TaskId, "task");

/// A fixed agent/hardware assignment (imperative workflows arrive fully
/// pinned; declarative ones leave this `None` for the orchestrator).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PinnedConfig {
    /// Agent name from the library.
    pub agent: String,
    /// Hardware target to run on.
    pub target: HardwareTarget,
}

/// One task instance in the DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskNode {
    /// Unique id within the graph.
    pub id: TaskId,
    /// Human-readable name, e.g. `"stt/formula_1/scene-7"`.
    pub name: String,
    /// Required capability.
    pub capability: Capability,
    /// Work the instance carries.
    pub work: Work,
    /// Optional pinned agent/hardware (imperative mode).
    pub pinned: Option<PinnedConfig>,
    /// Group key for instances of the same logical stage (e.g. all STT
    /// tasks share `"stt"`); used by lookahead and reporting.
    pub stage: String,
}

/// A directed acyclic graph of task instances.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TaskGraph {
    nodes: BTreeMap<TaskId, TaskNode>,
    /// Edges as predecessor -> successors.
    succ: BTreeMap<TaskId, BTreeSet<TaskId>>,
    /// Reverse edges.
    pred: BTreeMap<TaskId, BTreeSet<TaskId>>,
    next_id: u64,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Adds a task and returns its id.
    pub fn add_task(
        &mut self,
        name: impl Into<String>,
        stage: impl Into<String>,
        capability: Capability,
        work: Work,
    ) -> TaskId {
        let id = TaskId::from_raw(self.next_id);
        self.next_id += 1;
        self.nodes.insert(
            id,
            TaskNode {
                id,
                name: name.into(),
                capability,
                work,
                pinned: None,
                stage: stage.into(),
            },
        );
        self.succ.insert(id, BTreeSet::new());
        self.pred.insert(id, BTreeSet::new());
        id
    }

    /// Pins a task to an agent/hardware config.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotFound`] for an unknown task.
    pub fn pin(&mut self, id: TaskId, config: PinnedConfig) -> Result<(), SimError> {
        let node = self
            .nodes
            .get_mut(&id)
            .ok_or_else(|| SimError::not_found("task", id.to_string()))?;
        node.pinned = Some(config);
        Ok(())
    }

    /// Adds a dataflow edge `from -> to`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotFound`] if either endpoint is unknown and
    /// [`SimError::InvalidInput`] if the edge would create a cycle or a
    /// self-loop.
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) -> Result<(), SimError> {
        if !self.nodes.contains_key(&from) {
            return Err(SimError::not_found("task", from.to_string()));
        }
        if !self.nodes.contains_key(&to) {
            return Err(SimError::not_found("task", to.to_string()));
        }
        if from == to {
            return Err(SimError::InvalidInput(format!("self-loop on {from}")));
        }
        if self.reaches(to, from) {
            return Err(SimError::InvalidInput(format!(
                "edge {from} -> {to} would create a cycle"
            )));
        }
        self.succ.get_mut(&from).expect("checked").insert(to);
        self.pred.get_mut(&to).expect("checked").insert(from);
        Ok(())
    }

    /// Whether `to` is reachable from `from` (BFS).
    fn reaches(&self, from: TaskId, to: TaskId) -> bool {
        if from == to {
            return true;
        }
        let mut queue = VecDeque::from([from]);
        let mut seen = BTreeSet::from([from]);
        while let Some(n) = queue.pop_front() {
            for &s in &self.succ[&n] {
                if s == to {
                    return true;
                }
                if seen.insert(s) {
                    queue.push_back(s);
                }
            }
        }
        false
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succ.values().map(BTreeSet::len).sum()
    }

    /// Looks up a task.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotFound`] for an unknown id.
    pub fn task(&self, id: TaskId) -> Result<&TaskNode, SimError> {
        self.nodes
            .get(&id)
            .ok_or_else(|| SimError::not_found("task", id.to_string()))
    }

    /// All tasks in id order.
    pub fn tasks(&self) -> impl Iterator<Item = &TaskNode> {
        self.nodes.values()
    }

    /// Direct predecessors of a task.
    pub fn predecessors(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.pred.get(&id).into_iter().flatten().copied()
    }

    /// Direct successors of a task.
    pub fn successors(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.succ.get(&id).into_iter().flatten().copied()
    }

    /// Tasks whose predecessors are all in `completed` and which are not
    /// themselves completed — the schedulable frontier.
    pub fn ready(&self, completed: &BTreeSet<TaskId>) -> Vec<TaskId> {
        self.nodes
            .keys()
            .filter(|id| !completed.contains(id))
            .filter(|id| self.pred[id].iter().all(|p| completed.contains(p)))
            .copied()
            .collect()
    }

    /// A topological ordering (deterministic: id order among ready nodes).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidInput`] if the graph contains a cycle
    /// (cannot happen via [`TaskGraph::add_edge`], but graphs can be
    /// deserialized).
    pub fn topo_sort(&self) -> Result<Vec<TaskId>, SimError> {
        let mut indeg: BTreeMap<TaskId, usize> = self
            .nodes
            .keys()
            .map(|&id| (id, self.pred[&id].len()))
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut ready: BTreeSet<TaskId> = indeg
            .iter()
            .filter(|&(_, &d)| d == 0)
            .map(|(&id, _)| id)
            .collect();
        while let Some(&id) = ready.iter().next() {
            ready.remove(&id);
            order.push(id);
            for &s in &self.succ[&id] {
                let d = indeg.get_mut(&s).expect("node exists");
                *d -= 1;
                if *d == 0 {
                    ready.insert(s);
                }
            }
        }
        if order.len() != self.nodes.len() {
            return Err(SimError::InvalidInput("task graph contains a cycle".into()));
        }
        Ok(order)
    }

    /// Critical-path length under a per-task duration estimate.
    ///
    /// # Errors
    ///
    /// Propagates [`TaskGraph::topo_sort`] errors.
    pub fn critical_path(
        &self,
        mut estimate: impl FnMut(&TaskNode) -> SimDuration,
    ) -> Result<SimDuration, SimError> {
        let order = self.topo_sort()?;
        let mut finish: BTreeMap<TaskId, SimDuration> = BTreeMap::new();
        let mut best = SimDuration::ZERO;
        for id in order {
            let start = self.pred[&id]
                .iter()
                .map(|p| finish[p])
                .max()
                .unwrap_or(SimDuration::ZERO);
            let f = start + estimate(&self.nodes[&id]);
            best = best.max(f);
            finish.insert(id, f);
        }
        Ok(best)
    }

    /// Counts not-yet-completed tasks per capability — the DAG lookahead
    /// the workflow-aware cluster manager consumes (§3.2: "it exposes
    /// workflow DAGs to the Cluster Manager, providing visibility into
    /// completed and upcoming tasks").
    pub fn upcoming_by_capability(
        &self,
        completed: &BTreeSet<TaskId>,
    ) -> BTreeMap<Capability, usize> {
        let mut out = BTreeMap::new();
        for (id, node) in &self.nodes {
            if !completed.contains(id) {
                *out.entry(node.capability).or_insert(0) += 1;
            }
        }
        out
    }

    /// Merges `other` into `self`, remapping ids; returns the id mapping.
    pub fn absorb(&mut self, other: &TaskGraph) -> BTreeMap<TaskId, TaskId> {
        self.absorb_prefixed(other, "")
    }

    /// Merges `other` into `self` with `prefix` prepended to task and
    /// stage names (multi-tenant merges keep workflows distinguishable in
    /// traces and lookups).
    pub fn absorb_prefixed(&mut self, other: &TaskGraph, prefix: &str) -> BTreeMap<TaskId, TaskId> {
        let mut ids = Vec::with_capacity(other.nodes.len());
        self.absorb_prefixed_into(other, prefix, &mut ids);
        other.nodes.keys().copied().zip(ids).collect()
    }

    /// [`absorb_prefixed`](Self::absorb_prefixed) without the per-call
    /// map allocation: the new ids are appended to `out` in `other`'s
    /// node order (ascending old id). The serve loop's admission path
    /// reuses one `out` buffer across every admitted workflow.
    ///
    /// # Panics
    ///
    /// Panics if an absorbed edge would create a cycle (impossible for
    /// a valid `other`).
    pub fn absorb_prefixed_into(&mut self, other: &TaskGraph, prefix: &str, out: &mut Vec<TaskId>) {
        let start = out.len();
        // Sub-graphs built by the planner have dense ids 0..len (the
        // graph API only ever appends), so old-id → new-id lookup is
        // direct indexing; fall back to position search otherwise.
        let dense = other.next_id == other.nodes.len() as u64;
        for node in other.nodes.values() {
            let new = self.add_task(
                format!("{prefix}{}", node.name),
                format!("{prefix}{}", node.stage),
                node.capability,
                node.work,
            );
            if let Some(p) = &node.pinned {
                self.pin(new, p.clone()).expect("freshly added");
            }
            out.push(new);
        }
        let lookup = |old: TaskId| -> TaskId {
            if dense {
                out[start + old.raw() as usize]
            } else {
                let pos = other
                    .nodes
                    .keys()
                    .position(|&k| k == old)
                    .expect("edge endpoint exists");
                out[start + pos]
            }
        };
        for (from, succs) in &other.succ {
            for to in succs {
                self.add_edge(lookup(*from), lookup(*to))
                    .expect("absorbed edges cannot cycle");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (TaskGraph, [TaskId; 4]) {
        let mut g = TaskGraph::new();
        let a = g.add_task(
            "extract",
            "extract",
            Capability::FrameExtraction,
            Work::VideoSeconds(36.0),
        );
        let b = g.add_task(
            "stt",
            "stt",
            Capability::SpeechToText,
            Work::AudioSeconds(36.0),
        );
        let c = g.add_task(
            "detect",
            "detect",
            Capability::ObjectDetection,
            Work::Frames(10),
        );
        let d = g.add_task(
            "summarize",
            "summarize",
            Capability::Summarization,
            Work::Tokens {
                prompt: 900,
                output: 120,
            },
        );
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn builds_and_queries_diamond() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.predecessors(d).collect::<Vec<_>>(), vec![b, c]);
        assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![b, c]);
        assert!(g.task(a).is_ok());
        assert!(g.task(TaskId::from_raw(99)).is_err());
    }

    #[test]
    fn rejects_cycles_and_self_loops() {
        let (mut g, [a, _, _, d]) = diamond();
        assert!(matches!(g.add_edge(d, a), Err(SimError::InvalidInput(_))));
        assert!(matches!(g.add_edge(a, a), Err(SimError::InvalidInput(_))));
        assert!(matches!(
            g.add_edge(a, TaskId::from_raw(42)),
            Err(SimError::NotFound { .. })
        ));
    }

    #[test]
    fn ready_frontier_advances() {
        let (g, [a, b, c, d]) = diamond();
        let mut done = BTreeSet::new();
        assert_eq!(g.ready(&done), vec![a]);
        done.insert(a);
        assert_eq!(g.ready(&done), vec![b, c]);
        done.insert(b);
        assert_eq!(g.ready(&done), vec![c]);
        done.insert(c);
        assert_eq!(g.ready(&done), vec![d]);
        done.insert(d);
        assert!(g.ready(&done).is_empty());
    }

    #[test]
    fn topo_sort_respects_edges() {
        let (g, _) = diamond();
        let order = g.topo_sort().unwrap();
        let pos: BTreeMap<TaskId, usize> = order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for node in g.tasks() {
            for s in g.successors(node.id) {
                assert!(pos[&node.id] < pos[&s]);
            }
        }
    }

    #[test]
    fn critical_path_takes_longest_branch() {
        let (g, _) = diamond();
        // extract 2s; stt 6s; detect 1s; summarize 3s => 2+6+3 = 11.
        let cp = g
            .critical_path(|n| match n.capability {
                Capability::FrameExtraction => SimDuration::from_secs(2),
                Capability::SpeechToText => SimDuration::from_secs(6),
                Capability::ObjectDetection => SimDuration::from_secs(1),
                _ => SimDuration::from_secs(3),
            })
            .unwrap();
        assert_eq!(cp, SimDuration::from_secs(11));
    }

    #[test]
    fn upcoming_by_capability_counts_pending() {
        let (g, [a, ..]) = diamond();
        let mut done = BTreeSet::new();
        let up = g.upcoming_by_capability(&done);
        assert_eq!(up[&Capability::SpeechToText], 1);
        assert_eq!(up.len(), 4);
        done.insert(a);
        let up = g.upcoming_by_capability(&done);
        assert!(!up.contains_key(&Capability::FrameExtraction));
    }

    #[test]
    fn pinning_marks_nodes() {
        let (mut g, [a, ..]) = diamond();
        g.pin(
            a,
            PinnedConfig {
                agent: "OpenCV".into(),
                target: HardwareTarget::cpu_cores(1),
            },
        )
        .unwrap();
        assert_eq!(g.task(a).unwrap().pinned.as_ref().unwrap().agent, "OpenCV");
        assert!(g
            .pin(
                TaskId::from_raw(77),
                PinnedConfig {
                    agent: "x".into(),
                    target: HardwareTarget::ONE_GPU,
                }
            )
            .is_err());
    }

    #[test]
    fn absorb_remaps_ids_and_edges() {
        let (mut g, _) = diamond();
        let (other, _) = diamond();
        let before = g.len();
        let map = g.absorb(&other);
        assert_eq!(g.len(), before + other.len());
        assert_eq!(map.len(), other.len());
        assert_eq!(g.edge_count(), 8);
        g.topo_sort().unwrap();
    }

    #[test]
    fn serde_roundtrip_preserves_structure() {
        let (g, _) = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let back: TaskGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), g.len());
        assert_eq!(back.edge_count(), g.edge_count());
        back.topo_sort().unwrap();
    }
}
