//! The imperative (Listing 1) programming model.
//!
//! Reproduces today's style: explicit components with concrete models,
//! provider credentials, hyper-parameters and hard resource
//! specifications, wired into a fixed flow. The baseline executor in
//! `murakkab` interprets an [`ImperativeWorkflow`] literally — no agent
//! substitution, no intra-task parallelism, no idle-resource harvesting —
//! exactly the rigidity §2 describes.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use murakkab_agents::toolcall::ArgValue;
use murakkab_hardware::HardwareTarget;
use murakkab_sim::SimError;

/// A hard resource specification, as written in Listing 1
/// (`resources={GPUs: 1, GPU_Type: H100}` / `{CPUs: 2}` / `{PTUs: 4}`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ResourceSpec {
    /// Dedicated GPUs of an (optionally) named type.
    Gpus {
        /// Number of GPUs.
        count: u32,
    },
    /// Dedicated CPU cores.
    Cpus {
        /// Number of cores.
        count: u32,
    },
    /// Provisioned Throughput Units against a hosted endpoint.
    Ptus {
        /// Number of PTUs.
        count: u32,
    },
}

impl ResourceSpec {
    /// The hardware target this spec pins execution to. PTUs buy a share
    /// of a hosted GPU endpoint; we model 1 PTU ≈ a half-GPU share.
    pub fn target(&self) -> HardwareTarget {
        match *self {
            ResourceSpec::Gpus { count } => HardwareTarget::gpus(count),
            ResourceSpec::Cpus { count } => HardwareTarget::cpu_cores(count),
            ResourceSpec::Ptus { count } => HardwareTarget::Gpu {
                count: 1,
                share: (0.5 * f64::from(count)).min(1.0),
            },
        }
    }
}

/// The kind of component, mirroring Listing 1's `Tool` / `MLModel` / `LLM`
/// constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComponentKind {
    /// A classical tool (OpenCV, ffmpeg, ...).
    Tool,
    /// A non-LLM ML model (Whisper, CLIP, ...).
    MlModel,
    /// A large language model.
    Llm,
}

/// One explicitly configured workflow component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Component kind.
    pub kind: ComponentKind,
    /// Concrete model/tool name ("Whisper", "llama", ...).
    pub name: String,
    /// Provider credential handle (`OPENAI_API_KEY`, ...). Stored opaque;
    /// its presence is part of the coupling the paper criticises.
    pub key: Option<String>,
    /// Model/tool hyper-parameters (`sampling_rate: 15`,
    /// `context_len: 4096`, ...).
    pub params: BTreeMap<String, ArgValue>,
    /// Hard resource specification.
    pub resources: ResourceSpec,
    /// Optional system prompt (LLM components).
    pub system_prompt: Option<String>,
    /// Optional user prompt template (LLM components).
    pub user_prompt: Option<String>,
}

impl Component {
    /// Starts building a `Tool` component.
    pub fn tool(name: &str) -> ComponentBuilder {
        ComponentBuilder::new(ComponentKind::Tool, name)
    }

    /// Starts building an `MLModel` component.
    pub fn ml_model(name: &str) -> ComponentBuilder {
        ComponentBuilder::new(ComponentKind::MlModel, name)
    }

    /// Starts building an `LLM` component.
    pub fn llm(name: &str) -> ComponentBuilder {
        ComponentBuilder::new(ComponentKind::Llm, name)
    }
}

/// Builder for [`Component`].
#[derive(Debug, Clone)]
pub struct ComponentBuilder {
    c: Component,
}

impl ComponentBuilder {
    fn new(kind: ComponentKind, name: &str) -> Self {
        ComponentBuilder {
            c: Component {
                kind,
                name: name.to_string(),
                key: None,
                params: BTreeMap::new(),
                resources: ResourceSpec::Cpus { count: 1 },
                system_prompt: None,
                user_prompt: None,
            },
        }
    }

    /// Sets the provider credential handle.
    #[must_use]
    pub fn key(mut self, key: &str) -> Self {
        self.c.key = Some(key.to_string());
        self
    }

    /// Adds a hyper-parameter.
    #[must_use]
    pub fn param(mut self, name: &str, value: ArgValue) -> Self {
        self.c.params.insert(name.to_string(), value);
        self
    }

    /// Sets the resource specification.
    #[must_use]
    pub fn resources(mut self, spec: ResourceSpec) -> Self {
        self.c.resources = spec;
        self
    }

    /// Sets the system prompt.
    #[must_use]
    pub fn system_prompt(mut self, p: &str) -> Self {
        self.c.system_prompt = Some(p.to_string());
        self
    }

    /// Sets the user prompt.
    #[must_use]
    pub fn user_prompt(mut self, p: &str) -> Self {
        self.c.user_prompt = Some(p.to_string());
        self
    }

    /// Finishes the component.
    pub fn build(self) -> Component {
        self.c
    }
}

/// A fixed-flow imperative workflow: components plus an execution chain
/// (Listing 1 line 12: `Workflow(frame_ext -> stt -> obj_det -> summarize)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImperativeWorkflow {
    components: Vec<Component>,
    /// Edges as indices into `components`.
    flow: Vec<(usize, usize)>,
}

impl ImperativeWorkflow {
    /// Builds a linear chain in the given order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidInput`] for an empty chain.
    pub fn chain(components: Vec<Component>) -> Result<Self, SimError> {
        if components.is_empty() {
            return Err(SimError::InvalidInput("empty workflow chain".into()));
        }
        let flow = (0..components.len().saturating_sub(1))
            .map(|i| (i, i + 1))
            .collect();
        Ok(ImperativeWorkflow { components, flow })
    }

    /// Builds an arbitrary DAG over the components.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidInput`] for out-of-range edge indices.
    pub fn with_flow(
        components: Vec<Component>,
        flow: Vec<(usize, usize)>,
    ) -> Result<Self, SimError> {
        for &(a, b) in &flow {
            if a >= components.len() || b >= components.len() {
                return Err(SimError::InvalidInput(format!(
                    "flow edge ({a}, {b}) out of range"
                )));
            }
        }
        Ok(ImperativeWorkflow { components, flow })
    }

    /// The components in declaration order.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// The flow edges (indices into [`ImperativeWorkflow::components`]).
    pub fn flow(&self) -> &[(usize, usize)] {
        &self.flow
    }

    /// Finds a component by model/tool name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotFound`] if absent.
    pub fn component(&self, name: &str) -> Result<&Component, SimError> {
        self.components
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| SimError::not_found("component", name))
    }
}

/// The paper's Listing 1: the Video Understanding workflow exactly as an
/// OmAgent-style deployment specifies it today.
pub fn listing1_video_understanding() -> ImperativeWorkflow {
    let frame_ext = Component::tool("OpenCV")
        .param("sampling_rate", ArgValue::Int(15))
        .key("ON_PREM_SSH_KEY")
        .resources(ResourceSpec::Cpus { count: 1 })
        .build();
    let stt = Component::ml_model("Whisper")
        .key("OPENAI_API_KEY")
        .resources(ResourceSpec::Gpus { count: 1 })
        .build();
    let obj_det = Component::ml_model("CLIP")
        .key("AWS_SSH_KEY")
        .resources(ResourceSpec::Cpus { count: 2 })
        .build();
    let summarize = Component::llm("NVLM")
        .key("DATABRICKS_API_KEY")
        .param("context_len", ArgValue::Int(4096))
        .resources(ResourceSpec::Gpus { count: 8 })
        .system_prompt("You are an agent that can describe images in detail.")
        .user_prompt("Summarize the scenes using frames, detected objects and transcripts.")
        .build();
    ImperativeWorkflow::chain(vec![frame_ext, stt, obj_det, summarize]).expect("non-empty chain")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing1_structure_matches_paper() {
        let wf = listing1_video_understanding();
        assert_eq!(wf.components().len(), 4);
        assert_eq!(wf.flow(), &[(0, 1), (1, 2), (2, 3)]);
        let stt = wf.component("Whisper").unwrap();
        assert_eq!(stt.resources, ResourceSpec::Gpus { count: 1 });
        let llm = wf.component("NVLM").unwrap();
        assert_eq!(llm.resources, ResourceSpec::Gpus { count: 8 });
        assert!(llm
            .system_prompt
            .as_ref()
            .unwrap()
            .contains("describe images"));
        assert_eq!(
            wf.component("OpenCV").unwrap().params["sampling_rate"],
            ArgValue::Int(15)
        );
    }

    #[test]
    fn resource_specs_map_to_targets() {
        assert_eq!(
            ResourceSpec::Gpus { count: 2 }.target(),
            HardwareTarget::gpus(2)
        );
        assert_eq!(
            ResourceSpec::Cpus { count: 8 }.target(),
            HardwareTarget::cpu_cores(8)
        );
        // 1 PTU = half a GPU; 4 PTUs cap at one full GPU share.
        assert_eq!(
            ResourceSpec::Ptus { count: 1 }.target(),
            HardwareTarget::Gpu {
                count: 1,
                share: 0.5
            }
        );
        assert_eq!(
            ResourceSpec::Ptus { count: 4 }.target(),
            HardwareTarget::Gpu {
                count: 1,
                share: 1.0
            }
        );
    }

    #[test]
    fn empty_chain_rejected() {
        assert!(ImperativeWorkflow::chain(vec![]).is_err());
    }

    #[test]
    fn bad_flow_edges_rejected() {
        let c = Component::tool("x").build();
        assert!(ImperativeWorkflow::with_flow(vec![c], vec![(0, 3)]).is_err());
    }

    #[test]
    fn unknown_component_not_found() {
        let wf = listing1_video_understanding();
        assert!(wf.component("Gemini").is_err());
    }
}
