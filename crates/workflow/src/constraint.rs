//! High-level workflow constraints.
//!
//! Listing 2 attaches `constraints = MIN_COST` to a job; §3.1 notes "in
//! the future, we plan to support multiple constraints with a priority
//! ordering". [`ConstraintSet`] implements that ordering today: the first
//! objective constraint is the primary optimisation target, bound
//! constraints act as filters.

use serde::{Deserialize, Serialize};

use murakkab_agents::profile::Objective;
use murakkab_sim::SimDuration;

/// A single high-level constraint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Constraint {
    /// Minimise dollar cost (`MIN_COST` in Listing 2).
    MinCost,
    /// Minimise energy/power.
    MinPower,
    /// Minimise end-to-end latency.
    MinLatency,
    /// Maximise result quality.
    MaxQuality,
    /// Require end-to-end quality of at least this value.
    QualityAtLeast(f64),
    /// Require completion within this duration.
    LatencyUnder(SimDuration),
    /// Require total cost below this many dollars.
    CostUnder(f64),
}

impl Constraint {
    /// The optimisation objective this constraint implies, if it is an
    /// objective (bounds return `None`).
    pub fn objective(&self) -> Option<Objective> {
        match self {
            Constraint::MinCost => Some(Objective::Cost),
            Constraint::MinPower => Some(Objective::Power),
            Constraint::MinLatency => Some(Objective::Latency),
            Constraint::MaxQuality => Some(Objective::Quality),
            _ => None,
        }
    }
}

/// An ordered list of constraints (earlier = higher priority).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// An empty set (defaults apply: minimise latency at default quality).
    pub fn new() -> Self {
        ConstraintSet::default()
    }

    /// A set with a single constraint.
    pub fn single(c: Constraint) -> Self {
        ConstraintSet {
            constraints: vec![c],
        }
    }

    /// Appends a constraint at the lowest priority (builder style).
    #[must_use]
    pub fn and(mut self, c: Constraint) -> Self {
        self.constraints.push(c);
        self
    }

    /// The constraints in priority order.
    pub fn all(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The primary optimisation objective (highest-priority objective
    /// constraint), defaulting to latency.
    pub fn primary_objective(&self) -> Objective {
        self.constraints
            .iter()
            .find_map(Constraint::objective)
            .unwrap_or(Objective::Latency)
    }

    /// The effective quality floor: the strictest `QualityAtLeast` if one
    /// is given. Without an explicit floor, the default (0.90) applies —
    /// except under a `MaxQuality` primary objective, where the
    /// orchestrator maximises instead of filtering, so the floor is 0.
    pub fn quality_floor(&self) -> f64 {
        let explicit = self
            .constraints
            .iter()
            .filter_map(|c| match c {
                Constraint::QualityAtLeast(q) => Some(*q),
                _ => None,
            })
            .fold(None::<f64>, |acc, q| Some(acc.map_or(q, |a| a.max(q))));
        if let Some(q) = explicit {
            return q;
        }
        if self.primary_objective() == Objective::Quality {
            0.0
        } else {
            murakkab_agents::quality::QualityTarget::default().min_quality
        }
    }

    /// The latency bound, if any (strictest wins).
    pub fn latency_bound(&self) -> Option<SimDuration> {
        self.constraints
            .iter()
            .filter_map(|c| match c {
                Constraint::LatencyUnder(d) => Some(*d),
                _ => None,
            })
            .min()
    }

    /// The cost bound, if any (strictest wins).
    pub fn cost_bound(&self) -> Option<f64> {
        self.constraints
            .iter()
            .filter_map(|c| match c {
                Constraint::CostUnder(usd) => Some(*usd),
                _ => None,
            })
            .fold(None::<f64>, |acc, v| Some(acc.map_or(v, |a| a.min(v))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_defaults_to_latency_and_default_quality() {
        let s = ConstraintSet::new();
        assert_eq!(s.primary_objective(), Objective::Latency);
        assert!((s.quality_floor() - 0.90).abs() < 1e-12);
        assert!(s.latency_bound().is_none());
        assert!(s.cost_bound().is_none());
    }

    #[test]
    fn min_cost_is_listing2_spelling() {
        let s = ConstraintSet::single(Constraint::MinCost);
        assert_eq!(s.primary_objective(), Objective::Cost);
    }

    #[test]
    fn priority_order_picks_first_objective() {
        let s = ConstraintSet::single(Constraint::QualityAtLeast(0.95))
            .and(Constraint::MinPower)
            .and(Constraint::MinLatency);
        assert_eq!(s.primary_objective(), Objective::Power);
        assert_eq!(s.quality_floor(), 0.95);
    }

    #[test]
    fn strictest_bounds_win() {
        let s = ConstraintSet::new()
            .and(Constraint::LatencyUnder(SimDuration::from_secs(100)))
            .and(Constraint::LatencyUnder(SimDuration::from_secs(60)))
            .and(Constraint::CostUnder(5.0))
            .and(Constraint::CostUnder(2.0))
            .and(Constraint::QualityAtLeast(0.8))
            .and(Constraint::QualityAtLeast(0.92));
        assert_eq!(s.latency_bound(), Some(SimDuration::from_secs(60)));
        assert_eq!(s.cost_bound(), Some(2.0));
        assert_eq!(s.quality_floor(), 0.92);
    }

    #[test]
    fn bounds_are_not_objectives() {
        assert_eq!(Constraint::QualityAtLeast(0.9).objective(), None);
        assert_eq!(Constraint::MinLatency.objective(), Some(Objective::Latency));
    }
}
