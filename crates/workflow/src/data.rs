//! Data items flowing along workflow edges.
//!
//! The simulator never touches real pixels or audio samples; a
//! [`DataItem`] carries the *metadata* the cost models and the scheduler
//! need (durations, counts, token lengths) plus an optional opaque payload
//! for applications that want to thread real bytes through.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Typed metadata for a value produced/consumed by a task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DataItem {
    /// A whole video file.
    Video {
        /// File name (e.g. `"cats.mov"`).
        file: String,
        /// Duration in seconds.
        duration_s: f64,
        /// Number of detected scenes.
        scenes: u32,
    },
    /// One scene's audio track.
    Audio {
        /// Duration in seconds.
        seconds: f64,
    },
    /// A set of extracted frames.
    Frames {
        /// Frame count.
        count: u32,
    },
    /// A speech transcript.
    Transcript {
        /// Approximate token length.
        tokens: u32,
    },
    /// Detected object labels.
    Objects {
        /// Number of labels.
        count: u32,
    },
    /// LLM-produced text (summary, answer, reasoning step...).
    Text {
        /// Approximate token length.
        tokens: u32,
    },
    /// A vector embedding.
    Embedding {
        /// Dimensionality.
        dims: u32,
    },
    /// A batch of generic items (posts, documents, results).
    Items {
        /// Item count.
        count: u32,
    },
}

impl DataItem {
    /// Approximate token length when this item is pasted into an LLM
    /// prompt (used to size summarisation calls).
    pub fn prompt_tokens(&self) -> u32 {
        match *self {
            // ~60 image-patch tokens per frame for a VLM.
            DataItem::Frames { count } => count * 60,
            DataItem::Transcript { tokens } | DataItem::Text { tokens } => tokens,
            DataItem::Objects { count } => count * 4,
            DataItem::Items { count } => count * 40,
            DataItem::Video { .. } | DataItem::Audio { .. } | DataItem::Embedding { .. } => 0,
        }
    }
}

/// A data item paired with an optional opaque payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Payload {
    /// Metadata the scheduler understands.
    pub item: DataItem,
    /// Raw bytes for applications (never inspected by the runtime).
    pub bytes: Option<Bytes>,
}

impl Payload {
    /// A payload with metadata only.
    pub fn meta(item: DataItem) -> Self {
        Payload { item, bytes: None }
    }

    /// A payload carrying real bytes.
    pub fn with_bytes(item: DataItem, bytes: Bytes) -> Self {
        Payload {
            item,
            bytes: Some(bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prompt_tokens_for_multimodal_inputs() {
        assert_eq!(DataItem::Frames { count: 10 }.prompt_tokens(), 600);
        assert_eq!(DataItem::Transcript { tokens: 300 }.prompt_tokens(), 300);
        assert_eq!(DataItem::Objects { count: 12 }.prompt_tokens(), 48);
        assert_eq!(
            DataItem::Video {
                file: "cats.mov".into(),
                duration_s: 120.0,
                scenes: 6
            }
            .prompt_tokens(),
            0
        );
    }

    #[test]
    fn payload_carries_bytes_untouched() {
        let p = Payload::with_bytes(DataItem::Items { count: 1 }, Bytes::from_static(b"abc"));
        assert_eq!(p.bytes.unwrap().as_ref(), b"abc");
        assert!(Payload::meta(DataItem::Items { count: 1 }).bytes.is_none());
    }
}
