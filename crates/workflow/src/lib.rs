//! Workflow programming models and DAG intermediate representation.
//!
//! The paper contrasts two ways of writing the same Video Understanding
//! application:
//!
//! - **Listing 1 (imperative, today)** — the developer picks concrete
//!   models ("Whisper"), providers (API keys), resources (`GPUs: 1`,
//!   `PTUs: 4`) and wires the dataflow by hand. Reproduced by
//!   [`imperative`].
//! - **Listing 2 (declarative, Murakkab)** — the developer states the job
//!   in natural language, optionally hints sub-tasks, and attaches
//!   high-level constraints (`MIN_COST`). Reproduced by [`declarative`].
//!
//! Both lower to the same intermediate representation: a [`graph::TaskGraph`]
//! DAG whose nodes are task instances (capability + work amount) and whose
//! edges are dataflow. Imperative workflows arrive with every node *pinned*
//! to an agent and hardware config; declarative ones leave those choices to
//! the orchestrator.

pub mod constraint;
pub mod data;
pub mod declarative;
pub mod graph;
pub mod imperative;

pub use constraint::{Constraint, ConstraintSet};
pub use data::DataItem;
pub use declarative::Job;
pub use graph::{PinnedConfig, TaskGraph, TaskId, TaskNode};
pub use imperative::{Component, ImperativeWorkflow, ResourceSpec};
