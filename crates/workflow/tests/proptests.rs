//! Property-based tests for the task-graph IR.

use murakkab_agents::{Capability, Work};
use murakkab_sim::SimDuration;
use murakkab_workflow::{TaskGraph, TaskId};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Builds a random DAG: `n` nodes, edges only from lower to higher ids
/// (guaranteed acyclic), selected by the bit mask stream.
fn random_dag(n: usize, edges: &[(usize, usize)]) -> TaskGraph {
    let mut g = TaskGraph::new();
    let ids: Vec<TaskId> = (0..n)
        .map(|i| {
            g.add_task(
                format!("t{i}"),
                format!("stage{}", i % 4),
                Capability::Summarization,
                Work::Tokens {
                    prompt: 100,
                    output: 10,
                },
            )
        })
        .collect();
    for &(a, b) in edges {
        let (a, b) = (a % n, b % n);
        if a < b {
            g.add_edge(ids[a], ids[b])
                .expect("forward edges are acyclic");
        }
    }
    g
}

proptest! {
    /// Topological order exists for every generated DAG and respects all
    /// edges.
    #[test]
    fn topo_sort_respects_every_edge(
        n in 1usize..40,
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..120),
    ) {
        let g = random_dag(n, &edges);
        let order = g.topo_sort().expect("acyclic by construction");
        prop_assert_eq!(order.len(), g.len());
        let pos: BTreeMap<TaskId, usize> =
            order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for node in g.tasks() {
            for s in g.successors(node.id) {
                prop_assert!(pos[&node.id] < pos[&s]);
            }
        }
    }

    /// Simulating completion frontier-by-frontier consumes the whole
    /// graph: ready() never starves on an incomplete acyclic graph.
    #[test]
    fn frontier_always_progresses(
        n in 1usize..30,
        edges in prop::collection::vec((0usize..30, 0usize..30), 0..80),
    ) {
        let g = random_dag(n, &edges);
        let mut done = BTreeSet::new();
        while done.len() < g.len() {
            let ready = g.ready(&done);
            prop_assert!(!ready.is_empty(), "starved with {} of {} done", done.len(), g.len());
            for t in ready {
                done.insert(t);
            }
        }
        prop_assert_eq!(done.len(), g.len());
        prop_assert!(g.ready(&done).is_empty());
    }

    /// The critical path is at least the longest single task and at most
    /// the serial sum.
    #[test]
    fn critical_path_is_bounded(
        n in 1usize..25,
        edges in prop::collection::vec((0usize..25, 0usize..25), 0..60),
        durs in prop::collection::vec(1u64..100, 25),
    ) {
        let g = random_dag(n, &edges);
        let dur = |t: TaskId| SimDuration::from_secs(durs[t.raw() as usize % durs.len()]);
        let cp = g.critical_path(|node| dur(node.id)).expect("acyclic");
        let max_single = g.tasks().map(|t| dur(t.id)).max().expect("non-empty");
        let serial: u64 = g.tasks().map(|t| dur(t.id).as_micros()).sum();
        prop_assert!(cp >= max_single);
        prop_assert!(cp.as_micros() <= serial);
    }

    /// absorb() preserves node count, edge count and acyclicity, for any
    /// pair of generated graphs.
    #[test]
    fn absorb_preserves_structure(
        n1 in 1usize..15,
        e1 in prop::collection::vec((0usize..15, 0usize..15), 0..30),
        n2 in 1usize..15,
        e2 in prop::collection::vec((0usize..15, 0usize..15), 0..30),
    ) {
        let mut a = random_dag(n1, &e1);
        let b = random_dag(n2, &e2);
        let (an, ae) = (a.len(), a.edge_count());
        let map = a.absorb_prefixed(&b, "x/");
        prop_assert_eq!(a.len(), an + b.len());
        prop_assert_eq!(a.edge_count(), ae + b.edge_count());
        prop_assert_eq!(map.len(), b.len());
        a.topo_sort().expect("still acyclic");
        // Absorbed names carry the prefix.
        for (_, new_id) in map {
            prop_assert!(a.task(new_id).unwrap().name.starts_with("x/"));
        }
    }

    /// upcoming_by_capability always sums to the number of pending tasks.
    #[test]
    fn upcoming_counts_partition_pending(
        n in 1usize..30,
        edges in prop::collection::vec((0usize..30, 0usize..30), 0..60),
        complete_mask in prop::collection::vec(any::<bool>(), 30),
    ) {
        let g = random_dag(n, &edges);
        let done: BTreeSet<TaskId> = g
            .tasks()
            .filter(|t| complete_mask[t.id.raw() as usize % complete_mask.len()])
            .map(|t| t.id)
            .collect();
        let up = g.upcoming_by_capability(&done);
        let total: usize = up.values().sum();
        prop_assert_eq!(total, g.len() - done.len());
    }
}
