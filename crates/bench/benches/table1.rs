//! Criterion bench over the Table 1 levers: times each lever ablation and
//! the greedy-vs-exhaustive configuration search (§3.3).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use murakkab::ablation;
use murakkab_agents::library::stock_library;
use murakkab_agents::Profiler;
use murakkab_bench::SEED;
use murakkab_orchestrator::{ConfigSearch, DemandModel, SearchMode};
use murakkab_workflow::{Constraint, ConstraintSet};

fn bench_levers(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1-levers");
    group.sample_size(10);

    group.bench_function("cpu-vs-gpu", |b| {
        b.iter(|| ablation::cpu_vs_gpu(black_box(SEED)).unwrap())
    });
    group.bench_function("task-parallelism", |b| {
        b.iter(|| ablation::task_parallelism(black_box(SEED)).unwrap())
    });
    group.bench_function("execution-paths", |b| {
        b.iter(|| ablation::execution_paths(black_box(SEED)).unwrap())
    });
    group.finish();
}

fn bench_config_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1-config-search");
    group.sample_size(20);
    let store = Profiler::default().profile_library(&stock_library());
    let demand = DemandModel::video_understanding();
    let constraints =
        ConstraintSet::single(Constraint::MinCost).and(Constraint::QualityAtLeast(0.9));

    group.bench_function("greedy", |b| {
        b.iter(|| {
            ConfigSearch::new(SearchMode::Greedy)
                .search(black_box(&demand), &store, &constraints)
                .unwrap()
        })
    });
    group.bench_function("exhaustive", |b| {
        b.iter(|| {
            ConfigSearch::new(SearchMode::Exhaustive)
                .search(black_box(&demand), &store, &constraints)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_levers, bench_config_search);
criterion_main!(benches);
