//! Criterion bench over the Table 2 experiment: the full four-config
//! sweep, asserting the paper's energy/latency ordering each iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use murakkab_bench::{headline_claims, run_table2_configs, SEED};

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);

    group.bench_function("four-config-sweep", |b| {
        b.iter(|| {
            let reports = run_table2_configs(black_box(SEED)).unwrap();
            // Paper orderings must hold on every run: baseline slowest and
            // most energy-hungry; CPU config the most energy-efficient;
            // GPU config no slower than CPU config.
            let (baseline, cpu, gpu, hybrid) = (&reports[0], &reports[1], &reports[2], &reports[3]);
            assert!(baseline.makespan_s > gpu.makespan_s * 3.0);
            assert!(cpu.table2_energy_wh() < gpu.table2_energy_wh());
            assert!(hybrid.table2_energy_wh() <= gpu.table2_energy_wh());
            assert!(gpu.makespan_s <= cpu.makespan_s);
            let (speedup, eff) = headline_claims(&reports);
            assert!(speedup > 2.8 && eff > 3.0);
            reports
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
