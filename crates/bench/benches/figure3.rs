//! Criterion bench over the Figure 3 experiment: times the simulation of
//! each Video Understanding configuration and asserts the reproduced
//! *shape* (who wins and by how much) on every iteration's inputs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use murakkab::runtime::SttChoice;
use murakkab::scenario::{Scenario, Session};
use murakkab_bench::SEED;

fn bench_figure3(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure3");
    group.sample_size(10);

    group.bench_function("baseline", |b| {
        b.iter(|| {
            let r = murakkab::run_baseline_video_understanding(black_box(SEED)).unwrap();
            assert!(r.makespan_s > 200.0);
            r
        })
    });

    for (name, stt) in [
        ("murakkab-cpu", SttChoice::Cpu),
        ("murakkab-gpu", SttChoice::Gpu),
        ("murakkab-hybrid", SttChoice::Hybrid),
    ] {
        group.bench_function(name, |b| {
            let scenario = Scenario::closed_loop(black_box(name)).seed(SEED).stt(stt);
            let session = Session::new(&scenario).unwrap();
            b.iter(|| {
                let r = session.execute(&scenario).unwrap();
                assert!(r.core.makespan_s < 120.0);
                r
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure3);
criterion_main!(benches);
