//! Microbenchmarks of the substrate crates: event queue, LLM serving
//! engine, cluster placement, DAG expansion. These bound the simulator's
//! own overhead (how many simulated events per wall-second the
//! reproduction sustains).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use murakkab_cluster::{ClusterManager, PlacementPolicy};
use murakkab_hardware::{catalog, HardwareTarget};
use murakkab_llmsim::{build_backend, BackendSpec, Request};
use murakkab_orchestrator::{decompose, expand, JobInputs, MediaInfo, SceneInfo};
use murakkab_sim::{EventQueue, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("sim/event-queue-10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_micros(black_box(i * 37 % 9_973)), i);
            }
            q.drain_ordered().len()
        })
    });
}

fn bench_llm_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("llmsim");
    g.sample_size(30);
    for (name, spec) in [
        (
            "drain-64-requests",
            BackendSpec::Colocated {
                gpus: 1,
                max_batch: 8,
            },
        ),
        (
            "drain-64-requests-disagg",
            BackendSpec::Disaggregated {
                prefill_gpus: 1,
                decode_gpus: 1,
                max_batch: 8,
            },
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let sku = catalog::a100_80g();
                let mut ep = build_backend(
                    "bench",
                    murakkab_llmsim::model::llama3_8b(),
                    sku.clone(),
                    &spec,
                    sku.interconnect_gbps,
                )
                .expect("backend builds");
                for i in 0..64 {
                    ep.on_submit(Request::new(i, 512, 64), SimTime::ZERO)
                        .unwrap();
                }
                let (done, _) = ep.drain(SimTime::ZERO);
                assert_eq!(done.len(), 64);
            })
        });
    }
    g.finish();
}

fn bench_cluster(c: &mut Criterion) {
    c.bench_function("cluster/allocate-release-1k", |b| {
        b.iter(|| {
            let mut cm = ClusterManager::new(PlacementPolicy::BestFit);
            for _ in 0..4 {
                cm.add_node(catalog::nd96amsr_a100_v4());
            }
            for i in 0..1_000u64 {
                let t = SimTime::from_micros(i);
                let a = cm
                    .allocate(t, "bench", HardwareTarget::cpu_cores(8))
                    .unwrap();
                cm.release(t, a).unwrap();
            }
            cm
        })
    });
}

fn bench_expand(c: &mut Criterion) {
    let scenes = vec![
        SceneInfo {
            duration_s: 30.0,
            audio_s: 30.0,
            frames: 5,
        };
        64
    ];
    let inputs = JobInputs::videos(vec![MediaInfo {
        file: "big.mov".into(),
        scenes,
    }]);
    c.bench_function("orchestrator/expand-64-scenes", |b| {
        b.iter(|| {
            let g = expand(&decompose::video_understanding_plan(), black_box(&inputs)).unwrap();
            assert_eq!(g.len(), 64 * 6 + 64 * 5);
            g
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_llm_engine,
    bench_cluster,
    bench_expand
);
criterion_main!(benches);
