//! The multi-region federation bench: one consolidated region versus a
//! three-region federation under each geo-routing policy, on a
//! follow-the-sun diurnal workload.
//!
//! Every federated row serves the identical arrival stream over the
//! identical elastic-spot schedule (the autoscaler is purely
//! predictive, never backlog-driven), so compute node-hours and the
//! spot bill are equal across policies — the sweep isolates *where*
//! requests are served, not how much capacity they get. The claim the
//! scoreboard pins: a latency-aware policy (WAN RTT weighed against
//! queue pressure) beats a latency-oblivious pressure chase on
//! worst-class TTFT p95 at equal node-hours, because chasing idle
//! capacity across the planet buys queueing relief at a WAN round-trip
//! the tail classes cannot afford.

use serde::{Deserialize, Serialize};

use murakkab::scenario::{Scenario, Session};
use murakkab::{GeoPolicy, GeoReport, GeoSpec};
use murakkab_sim::SimError;
use murakkab_traffic::ArrivalProcess;

use crate::write_bench_json;

/// Per-region on-demand nodes in the federated configurations. Sized
/// so queue-pressure granularity (`1/nodes`) sits *below* the longest
/// WAN penalty — the regime where latency-aware and latency-oblivious
/// routing genuinely disagree on marginal spillovers.
pub const GEO_REGION_NODES: usize = 6;
/// Shards (cells) per region.
pub const GEO_REGION_SHARDS: usize = 3;
/// Per-region spot pool (whole cells of `GEO_REGION_NODES / GEO_REGION_SHARDS`).
pub const GEO_REGION_SPOT: usize = 2;
/// Offered load, requests per second across the globe.
pub const GEO_RATE_PER_S: f64 = 2.0;
/// Arrival horizon, seconds.
pub const GEO_HORIZON_S: f64 = 600.0;
/// Compressed model day: the horizon sees a full diurnal cycle.
pub const GEO_DAY_S: f64 = 600.0;
/// Telemetry sync cadence between regions, seconds.
pub const GEO_EPOCH_S: f64 = 20.0;

/// One scoreboard row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeoRow {
    /// Configuration label.
    pub label: String,
    /// Routing policy tag (`"consolidated"` for the 1-region row).
    pub policy: String,
    /// Region count.
    pub regions: usize,
    /// The figure of merit: worst per-class TTFT p95, seconds.
    pub worst_class_ttft_p95_s: f64,
    /// Global SLO attainment.
    pub slo_attainment: f64,
    /// Global goodput, deadline-met workflows per minute.
    pub goodput_per_min: f64,
    /// Requests served outside their origin region.
    pub cross_region_requests: u64,
    /// WAN transfer, GB.
    pub wan_egress_gb: f64,
    /// Elastic spot capacity used, node-hours.
    pub spot_node_hours: f64,
    /// Spot reclaims absorbed.
    pub spot_reclaims: u64,
    /// Compute + WAN egress dollars.
    pub cost_usd: f64,
}

impl GeoRow {
    fn from_geo(label: &str, report: &GeoReport) -> Self {
        GeoRow {
            label: label.into(),
            policy: report.policy.clone(),
            regions: report.regions.len(),
            worst_class_ttft_p95_s: report.worst_class_ttft_p95_s().unwrap_or(0.0),
            slo_attainment: report.global.slo_attainment,
            goodput_per_min: report.global.goodput_per_min,
            cross_region_requests: report.cross_region_requests,
            wan_egress_gb: report.wan_egress_gb,
            spot_node_hours: report.spot_node_hours,
            spot_reclaims: report.spot_reclaims,
            cost_usd: report.cost_usd,
        }
    }
}

/// The model day is compressed 144x (a 600s day standing in for
/// 86,400s), so WAN round-trips are scaled by the same factor — in
/// wall-clock terms a 220ms Pacific crossing costs the compressed
/// world what ~32s costs the real one. Leaving RTTs at their real-time
/// values would make the WAN effectively free relative to compressed
/// queueing dynamics and every routing policy would collapse into the
/// same pressure chase.
pub const TIME_COMPRESSION: f64 = 86_400.0 / GEO_DAY_S;

/// The federated GeoSpec every policy row shares.
fn federation(policy: GeoPolicy, epoch_s: f64) -> GeoSpec {
    let mut spec = GeoSpec::three_region(GEO_REGION_NODES, GEO_REGION_SHARDS, GEO_REGION_SPOT)
        .policy(policy)
        .day_s(GEO_DAY_S)
        .sync_epoch_s(epoch_s);
    for row in &mut spec.wan.rtt_ms {
        for v in row.iter_mut() {
            *v *= TIME_COMPRESSION;
        }
    }
    spec
}

fn scenario_for(label: &str, seed: u64, horizon_s: f64, spec: GeoSpec) -> Scenario {
    let spot: usize = spec.regions.iter().map(|r| r.spot_nodes).sum();
    let nodes = spec.regions.iter().map(|r| r.nodes).sum::<usize>()
        + if spec.elastic.is_some() { spot } else { 0 };
    Scenario::open_loop(
        label,
        ArrivalProcess::Poisson {
            rate_per_s: GEO_RATE_PER_S,
        },
        horizon_s,
    )
    .seed(seed)
    .cluster(murakkab_hardware::catalog::nd96amsr_a100_v4(), nodes)
    // Admission comfortably above the global offered rate: each region
    // gets its own controller, so a tight default would gate the
    // consolidated row (the full global rate on one controller) much
    // harder than the federation and confound the queueing comparison.
    .admission(murakkab_traffic::AdmissionConfig {
        rate_per_s: 2.5,
        max_queue: 64,
        ..Default::default()
    })
    .geo(spec)
}

/// Runs the sweep: one consolidated region (all on-demand and spot
/// capacity in a single site, zero WAN) plus the three-region
/// federation under every routing policy, all on the same seed and
/// arrival stream.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_geo_sweep(seed: u64, horizon_s: f64) -> Result<Vec<(String, GeoReport)>, SimError> {
    let mut out = Vec::new();

    // Consolidated baseline: the whole on-demand + spot footprint in
    // one region. The same global capacity and elastic mechanics, no
    // WAN, but also no region is ever in local night — the diurnal
    // origin curve hits one queue.
    let mut single = GeoSpec::three_region(GEO_REGION_NODES, GEO_REGION_SHARDS, GEO_REGION_SPOT)
        .day_s(GEO_DAY_S)
        .sync_epoch_s(GEO_EPOCH_S);
    single.regions.truncate(1);
    single.regions[0].nodes = 3 * GEO_REGION_NODES;
    single.regions[0].shards = 3 * GEO_REGION_SHARDS;
    single.regions[0].spot_nodes = 3 * GEO_REGION_SPOT;
    single.wan.rtt_ms = vec![vec![0.0]];
    let scenario = scenario_for("geo/consolidated", seed, horizon_s, single);
    let session = Session::new(&scenario)?;
    let report = session.execute(&scenario)?;
    out.push((
        "consolidated".to_string(),
        report.geo().expect("geo detail").clone(),
    ));

    for policy in GeoPolicy::ALL {
        let spec = federation(policy, GEO_EPOCH_S);
        let scenario = scenario_for(&format!("geo/{}", policy.tag()), seed, horizon_s, spec);
        let session = Session::new(&scenario)?;
        let report = session.execute(&scenario)?;
        out.push((
            policy.tag().to_string(),
            report.geo().expect("geo detail").clone(),
        ));
    }
    Ok(out)
}

/// The geo bench driver: runs the sweep, prints the scoreboard, checks
/// the equal-cost and latency-aware-wins contracts, and writes
/// `BENCH_geo.json`. `quick` trims the horizon so CI exercises the full
/// path on every push.
///
/// # Panics
///
/// Panics if a run, a contract, or the results file fails — bench
/// binaries want loud failures.
pub fn geo_main(seed: u64, quick: bool) {
    let horizon_s = if quick { 180.0 } else { GEO_HORIZON_S };
    println!(
        "Multi-region federation sweep (seed {seed}{}): 1 consolidated region vs 3 regions x {} \
         policies, {GEO_RATE_PER_S} req/s over {horizon_s}s, day {GEO_DAY_S}s\n",
        if quick { ", quick" } else { "" },
        GeoPolicy::ALL.len(),
    );

    let results = run_geo_sweep(seed, horizon_s).expect("geo sweep runs");
    let rows: Vec<GeoRow> = results
        .iter()
        .map(|(label, report)| GeoRow::from_geo(label, report))
        .collect();

    println!(
        "{:<18} {:>7} {:>14} {:>8} {:>12} {:>9} {:>8} {:>9} {:>10}",
        "config",
        "regions",
        "worst TTFTp95",
        "SLO %",
        "goodput/min",
        "x-region",
        "WAN GB",
        "spot nh",
        "cost $"
    );
    for row in &rows {
        println!(
            "{:<18} {:>7} {:>13.2}s {:>8.1} {:>12.2} {:>9} {:>8.2} {:>9.2} {:>10.2}",
            row.label,
            row.regions,
            row.worst_class_ttft_p95_s,
            100.0 * row.slo_attainment,
            row.goodput_per_min,
            row.cross_region_requests,
            row.wan_egress_gb,
            row.spot_node_hours,
            row.cost_usd,
        );
    }

    // Contract 1: the elastic schedule is policy-independent, so every
    // federated row used identical spot node-hours (equal capacity).
    let federated: Vec<&GeoRow> = rows.iter().filter(|r| r.regions == 3).collect();
    let spot0 = federated[0].spot_node_hours;
    for row in &federated {
        assert!(
            (row.spot_node_hours - spot0).abs() < 1e-9,
            "{} broke the equal-capacity contract: {} vs {} spot node-hours",
            row.label,
            row.spot_node_hours,
            spot0
        );
    }

    // Contract 2: the latency-aware policy beats the latency-oblivious
    // pressure chase on worst-class TTFT p95 at that equal capacity.
    let aware = federated
        .iter()
        .find(|r| r.label == "latency-weighted")
        .expect("latency-weighted row");
    let oblivious = federated
        .iter()
        .find(|r| r.label == "follow-the-sun")
        .expect("follow-the-sun row");
    println!(
        "\nworst-class TTFT p95: latency-aware {:.2}s vs latency-oblivious {:.2}s \
         (equal {:.2} spot node-hours)",
        aware.worst_class_ttft_p95_s, oblivious.worst_class_ttft_p95_s, spot0
    );
    assert!(
        aware.worst_class_ttft_p95_s < oblivious.worst_class_ttft_p95_s,
        "latency-aware ({:.3}s) must beat latency-oblivious ({:.3}s) on worst-class TTFT p95",
        aware.worst_class_ttft_p95_s,
        oblivious.worst_class_ttft_p95_s
    );

    // CI determinism gate: the federated digest must not move with the
    // worker-thread count.
    if quick {
        let base = scenario_for(
            "geo/digest",
            seed,
            horizon_s,
            federation(GeoPolicy::LatencyWeighted, GEO_EPOCH_S),
        );
        let sequential = Session::new(&base.clone().threads(1))
            .and_then(|s| s.execute(&base.clone().threads(1)))
            .expect("sequential digest run")
            .digest();
        let threaded = Session::new(&base.clone().threads(3))
            .and_then(|s| s.execute(&base.clone().threads(3)))
            .expect("threaded digest run")
            .digest();
        assert_eq!(
            sequential, threaded,
            "geo digest moved with the worker-thread count"
        );
        println!("\ndigest {sequential} identical at 1 and 3 worker threads");
    }

    let path = write_bench_json("geo", &rows).expect("results file writes");
    println!("\nwrote {}", path.display());
}
