//! Simulation-speed scoreboard: wall-clock throughput of the fleet
//! serve loop across a shards × threads grid.
//!
//! Every grid point replays the same captured arrival log from the
//! shard sweep, so the only thing that varies is how the work is
//! partitioned (shards) and how many worker threads step cells between
//! synchronization epochs (threads). The scoreboard's invariant is the
//! determinism contract itself: for each shard count, every thread
//! count must produce a bit-identical report digest
//! (`murakkab::scenario::Report::digest`), and the
//! driver asserts it before writing a single row. What the table then
//! shows is pure wall-clock: events per wall-second and simulated
//! seconds per wall-second, with the speedup over the single-threaded
//! run of the same shard count.

use murakkab::fleet::CellPolicy;
use murakkab::scenario::{Scenario, Session};
use murakkab::FleetReport;
use murakkab_sim::{SimDuration, SimRng};
use murakkab_traffic::{AdmissionConfig, ArrivalLog, ArrivalProcess};
use serde::Serialize;

use crate::{write_bench_json, FLEET_SHARD_NODES};

/// Thread counts swept at every shard count.
pub const SIMSPEED_THREADS: [usize; 3] = [1, 2, 4];

/// Arrival horizon of the full scoreboard, seconds — long enough that
/// per-epoch thread-dispatch overhead amortizes into the steady state.
pub const SIMSPEED_HORIZON_S: f64 = 1800.0;

/// Offered rate of the scoreboard, requests per second — past the
/// cluster knee with the front door open, so cells carry a deep
/// standing backlog and every epoch has real work to parallelize.
pub const SIMSPEED_RATE: f64 = 0.8;

/// Fleet-wide in-flight budget of the scoreboard. Much wider than the
/// shard sweep's: the scoreboard measures engine-stepping throughput,
/// so cells should be saturated with running work, not slot-starved.
pub const SIMSPEED_MAX_INFLIGHT: usize = 64;

/// Per-stage fan-out of the scoreboard's workflows. Wide stages mean
/// more engine events per admitted workflow, which is what gives each
/// synchronization epoch enough work to amortize thread dispatch.
pub const SIMSPEED_PARALLELISM: u32 = 24;

/// Captures the scoreboard's Poisson stream as an [`ArrivalLog`] — the
/// same fork path `Runtime::serve` uses, so every grid point replays
/// byte-identical traffic.
pub fn simspeed_log(seed: u64, horizon_s: f64) -> ArrivalLog {
    let process = ArrivalProcess::Poisson {
        rate_per_s: SIMSPEED_RATE,
    };
    let mut rng = SimRng::new(seed).fork("fleet").fork("arrivals");
    ArrivalLog::record(&process, &mut rng, SimDuration::from_secs_f64(horizon_s))
}

/// The scoreboard's scenario for one grid point: the captured log
/// replayed with the front door wide open (no admission — shedding
/// would starve the engines the scoreboard times) and wide workflows on
/// the shard sweep's [`FLEET_SHARD_NODES`]-node cluster.
pub fn simspeed_scenario(
    seed: u64,
    log: &ArrivalLog,
    shards: usize,
    threads: usize,
    horizon_s: f64,
) -> Scenario {
    // The label deliberately omits the thread count: it is serialized
    // into the report, and the report digest must be bit-identical
    // across thread counts.
    Scenario::open_loop(
        &format!("shards={shards}"),
        ArrivalProcess::Replay { log: log.clone() },
        horizon_s,
    )
    .seed(seed)
    .cluster(
        murakkab_hardware::catalog::nd96amsr_a100_v4(),
        FLEET_SHARD_NODES,
    )
    .shards(shards)
    .router(CellPolicy::LeastLoaded)
    .max_inflight(SIMSPEED_MAX_INFLIGHT)
    .parallelism(SIMSPEED_PARALLELISM)
    .admission(AdmissionConfig::disabled())
    .threads(threads)
}

/// One measured grid point of the scoreboard.
#[derive(Debug, Clone, Serialize)]
pub struct SimSpeedRow {
    /// Engine cells the cluster was partitioned into.
    pub shards: usize,
    /// Worker threads stepping cells between synchronization epochs.
    pub threads: usize,
    /// Wall-clock time of the serve call, seconds.
    pub wall_s: f64,
    /// Simulated makespan, seconds.
    pub sim_s: f64,
    /// Engine events processed across all cells.
    pub events: u64,
    /// Events per wall-second — the scoreboard's headline rate.
    pub events_per_wall_s: f64,
    /// Simulated seconds per wall-second.
    pub sim_s_per_wall_s: f64,
    /// Wall-clock speedup over the `threads = 1` run at this shard
    /// count.
    pub speedup: f64,
    /// Report digest — identical across every thread count of a shard
    /// row by construction (asserted before the row is recorded).
    pub digest: String,
}

/// Runs the scoreboard grid: for each shard count, every thread count
/// replays the same log and the digests are asserted bit-identical
/// before wall-clock rates are computed.
///
/// # Errors
///
/// Propagates simulation errors.
///
/// # Panics
///
/// Panics if a thread count's digest diverges from the sequential run —
/// a determinism break must not produce a scoreboard row.
pub fn run_simspeed_grid(
    seed: u64,
    shard_counts: &[usize],
    thread_counts: &[usize],
    horizon_s: f64,
) -> Result<Vec<SimSpeedRow>, murakkab_sim::SimError> {
    let log = simspeed_log(seed, horizon_s);
    let probe = simspeed_scenario(seed, &log, 1, 1, horizon_s);
    let session = Session::new(&probe)?;
    let mut rows = Vec::new();
    for &shards in shard_counts {
        let mut baseline: Option<(u64, f64)> = None; // (digest, wall_s) at threads = 1
        for &threads in thread_counts {
            let scenario = simspeed_scenario(seed, &log, shards, threads, horizon_s);
            let start = std::time::Instant::now();
            let executed = session.execute(&scenario)?;
            let wall_s = start.elapsed().as_secs_f64();
            let digest = executed.digest();
            let report: FleetReport = executed.into_open_loop()?;
            let base = *baseline.get_or_insert((digest, wall_s));
            assert_eq!(
                digest, base.0,
                "shards={shards} threads={threads} diverged from the sequential digest"
            );
            rows.push(SimSpeedRow {
                shards,
                threads,
                wall_s,
                sim_s: report.makespan_s,
                events: report.events_processed,
                events_per_wall_s: report.events_processed as f64 / wall_s.max(1e-9),
                sim_s_per_wall_s: report.makespan_s / wall_s.max(1e-9),
                speedup: base.1 / wall_s.max(1e-9),
                digest: format!("{digest:#018x}"),
            });
        }
    }
    Ok(rows)
}

/// The simspeed bench driver: runs the shards × threads grid, prints
/// the scoreboard and writes `BENCH_simspeed.json`. `quick` trims the
/// grid (shards {1, 2} × threads {1, 2}, short horizon) so CI can
/// exercise the full path — including the digest cross-check — on
/// every push.
///
/// # Panics
///
/// Panics if a run, a digest cross-check, or the results file fails —
/// bench binaries want loud failures.
pub fn simspeed_main(seed: u64, quick: bool) {
    let (shard_counts, thread_counts, horizon_s): (&[usize], &[usize], f64) = if quick {
        (
            &crate::FLEET_SHARD_SWEEP[..2],
            &SIMSPEED_THREADS[..2],
            240.0,
        )
    } else {
        (
            &crate::FLEET_SHARD_SWEEP,
            &SIMSPEED_THREADS,
            SIMSPEED_HORIZON_S,
        )
    };
    println!(
        "Sim-speed scoreboard (seed {seed}{}): shards {shard_counts:?} x threads \
         {thread_counts:?}, {horizon_s}s horizon, {} nodes\n",
        if quick { ", quick" } else { "" },
        FLEET_SHARD_NODES,
    );

    let rows =
        run_simspeed_grid(seed, shard_counts, thread_counts, horizon_s).expect("simspeed grid");

    println!(
        "  {:>6} {:>7} | {:>8} {:>12} {:>13} | {:>7} | digest",
        "shards", "threads", "wall s", "events/s", "sim-s/wall-s", "speedup"
    );
    for row in &rows {
        println!(
            "  {:>6} {:>7} | {:>8.2} {:>12.0} {:>13.1} | {:>6.2}x | {}",
            row.shards,
            row.threads,
            row.wall_s,
            row.events_per_wall_s,
            row.sim_s_per_wall_s,
            row.speedup,
            row.digest,
        );
    }

    // Wall-clock speedup is bounded by the host: a single-core box can
    // prove determinism (the digest column) but not parallelism, so the
    // scoreboard records what it ran on.
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let undersized_host = host_cores < thread_counts.iter().copied().max().unwrap_or(1);
    if undersized_host {
        println!("\n  note: host has {host_cores} core(s); speedup is substrate-bound");
    }

    #[derive(Serialize)]
    struct SimSpeedBench {
        seed: u64,
        horizon_s: f64,
        nodes: usize,
        host_cores: usize,
        /// Provenance caveat, present when the host had fewer cores
        /// than the widest thread count: the speedup column then
        /// measures substrate overhead, not parallel scaling.
        note: Option<String>,
        rows: Vec<SimSpeedRow>,
    }
    let path = write_bench_json(
        "simspeed",
        &SimSpeedBench {
            seed,
            horizon_s,
            nodes: FLEET_SHARD_NODES,
            host_cores,
            note: undersized_host.then(|| {
                format!(
                    "speedup rows were measured on a {host_cores}-core host; they bound \
                     substrate overhead, not parallel scaling"
                )
            }),
            rows,
        },
    )
    .expect("results file writes");
    println!("\n(wrote {})", path.display());
}
