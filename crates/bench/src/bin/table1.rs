//! Regenerates Table 1 of the paper: the optimisation levers and their
//! measured impact on cost, power, latency and quality — re-derived by
//! running the full simulator with each lever off and on — plus the §3.3
//! greedy-vs-exhaustive configuration-search ablation.
//!
//! Run with `cargo run -p murakkab-bench --bin table1 [seed]`.

use murakkab::ablation;
use murakkab_agents::library::stock_library;
use murakkab_agents::Profiler;
use murakkab_bench::{write_bench_json, SEED};
use murakkab_orchestrator::{ConfigSearch, DemandModel, SearchMode};
use murakkab_workflow::{Constraint, ConstraintSet};
use serde::Serialize;

/// One config-search ablation row of the emitted results file.
#[derive(Serialize)]
struct SearchRow {
    objective: String,
    greedy_configs: usize,
    exhaustive_configs: usize,
    greedy_over_exhaustive: f64,
}

/// The table1 results file: lever rows plus the search ablation.
#[derive(Serialize)]
struct Table1Results {
    seed: u64,
    levers: Vec<ablation::LeverRow>,
    search: Vec<SearchRow>,
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(SEED);

    println!("Table 1: Optimization parameters and their measured impact (seed {seed})\n");
    println!(
        "{:<18} {:<22} | {:>7} {:>7} {:>8} {:>8} | paper row",
        "Parameter", "Selection", "$ Cost", "Power", "Latency", "Quality"
    );
    println!("{}", "-".repeat(100));

    let paper = [
        (
            "GPU Generation",
            "Higher, Higher, Lower/No Change, No Change",
        ),
        ("CPU vs GPU", "Lower, Lower, Lower, No Change"),
        ("Task Parallelism", "Higher, Higher, Lower, No Change"),
        (
            "Execution Paths",
            "Higher, Higher, Higher/No Change, Higher/No Change",
        ),
        ("Model/Tool", "Higher, Higher, Higher, Higher/No Change"),
    ];
    let rows = ablation::all_rows(seed).expect("lever runs succeed");
    for (row, (_, paper_arrows)) in rows.iter().zip(paper.iter()) {
        let (cost, power, latency, quality) = row.directions();
        println!(
            "{:<18} {:<22} | {:>7} {:>7} {:>8} {:>8} | {paper_arrows}",
            row.lever, row.selection, cost, power, latency, quality
        );
        println!(
            "{:<41} | before: {:.1}s / {:.1}Wh / ${:.3}; after: {:.1}s / {:.1}Wh / ${:.3}",
            "",
            row.before.makespan_s,
            row.before.table2_energy_wh(),
            row.before.cost_usd,
            row.after.makespan_s,
            row.after.table2_energy_wh(),
            row.after.cost_usd,
        );
    }

    // §3.3 configuration-search ablation: the greedy hierarchy vs the
    // exhaustive cross product on the Video Understanding demand.
    println!("\nConfiguration search (§3.3 pruning) on the VU demand model:");
    let lib = stock_library();
    let store = Profiler::default().profile_library(&lib);
    let demand = DemandModel::video_understanding();
    let mut search_rows = Vec::new();
    for objective in [
        Constraint::MinCost,
        Constraint::MinPower,
        Constraint::MinLatency,
    ] {
        let constraints = ConstraintSet::single(objective).and(Constraint::QualityAtLeast(0.9));
        let (_, g_est, g_n) = ConfigSearch::new(SearchMode::Greedy)
            .search(&demand, &store, &constraints)
            .expect("greedy search succeeds");
        let (_, e_est, e_n) = ConfigSearch::new(SearchMode::Exhaustive)
            .search(&demand, &store, &constraints)
            .expect("exhaustive search succeeds");
        println!(
            "  {objective:?}: greedy {g_n} configs evaluated vs exhaustive {e_n} \
             ({:.0}x fewer); objective value greedy/exhaustive = {:.3}",
            e_n as f64 / g_n as f64,
            greedy_ratio(objective, g_est, e_est),
        );
        search_rows.push(SearchRow {
            objective: format!("{objective:?}"),
            greedy_configs: g_n,
            exhaustive_configs: e_n,
            greedy_over_exhaustive: greedy_ratio(objective, g_est, e_est),
        });
    }

    let path = write_bench_json(
        "table1",
        &Table1Results {
            seed,
            levers: rows,
            search: search_rows,
        },
    )
    .expect("results file writes");
    println!("\n(wrote {})", path.display());
}

fn greedy_ratio(
    c: Constraint,
    g: murakkab_orchestrator::Estimate,
    e: murakkab_orchestrator::Estimate,
) -> f64 {
    match c {
        Constraint::MinCost => g.cost_usd / e.cost_usd,
        Constraint::MinPower => g.energy_wh / e.energy_wh,
        _ => g.latency_s / e.latency_s,
    }
}
