//! Regenerates Figure 3 of the paper: per-component execution timelines
//! and cluster CPU/GPU utilization for the baseline and the three
//! Murakkab configurations.
//!
//! Run with `cargo run -p murakkab-bench --bin figure3 [seed]`.

use murakkab_bench::{run_table2_configs, write_bench_json, SEED};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(SEED);
    let reports = run_table2_configs(seed).expect("figure 3 runs succeed");

    println!("Figure 3: Execution traces of the Video Understanding workflow (seed {seed})");
    println!("(lanes: # = component active; GPU%/CPU% sparklines below each timeline)\n");
    for report in &reports {
        println!("{}", report.figure3_block(96));
    }

    let baseline = &reports[0];
    let best = reports[1..]
        .iter()
        .min_by(|a, b| a.makespan_s.total_cmp(&b.makespan_s))
        .expect("non-empty");
    println!(
        "Murakkab completes the workflow in {:.0}-{:.0}s vs the baseline's {:.0}s (~{:.1}x speedup)",
        best.makespan_s,
        reports[1..]
            .iter()
            .map(|r| r.makespan_s)
            .fold(0.0, f64::max),
        baseline.makespan_s,
        baseline.makespan_s
            / reports[1..]
                .iter()
                .map(|r| r.makespan_s)
                .fold(0.0, f64::max)
    );

    let path = write_bench_json("figure3", &reports).expect("results file writes");
    for report in &reports {
        let name = format!(
            "figure3-{}.trace.json",
            report.label.to_lowercase().replace([' ', '+'], "-")
        );
        std::fs::write(&name, report.trace.to_chrome_trace()).ok();
    }
    println!(
        "(wrote {} and per-config *.trace.json files — open the latter in \
         chrome://tracing or Perfetto)",
        path.display()
    );
}
