//! Measures Murakkab's overheads (§3.3) and the workflow-aware vs
//! workflow-blind cluster-management ablation.
//!
//! - **DAG creation**: the orchestration LLM queries' share of end-to-end
//!   time (the paper claims "less than 1% of the execution time").
//! - **Profiling**: one-off cost of profiling the whole library, amortised
//!   over workflow runs.
//! - **Workflow-aware release**: energy saved by returning idle agents'
//!   resources early (the paper's Whisper example).
//!
//! Run with `cargo run -p murakkab-bench --bin overheads [seed]`.

use std::time::Instant;

use murakkab::runtime::SttChoice;
use murakkab::scenario::{Scenario, Session};
use murakkab_agents::library::stock_library;
use murakkab_agents::Profiler;
use murakkab_bench::{write_bench_json, SEED};
use serde::Serialize;

/// The overheads results file (profiling_ms is wall-clock and varies
/// run-to-run; the simulated quantities are seed-deterministic).
#[derive(Serialize)]
struct OverheadResults {
    seed: u64,
    profiling_ms: f64,
    profiles: usize,
    agents: usize,
    orchestration_s: f64,
    orchestration_fraction: f64,
    aware_energy_wh: f64,
    blind_energy_wh: f64,
    aware_makespan_s: f64,
    blind_makespan_s: f64,
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(SEED);
    let base = Scenario::closed_loop("murakkab-gpu").seed(seed);
    let session = Session::new(&base).expect("session builds");

    // (a) Profiling overhead: wall-clock to profile the full library.
    let t0 = Instant::now();
    let lib = stock_library();
    let store = Profiler::default().profile_library(&lib);
    let profiling_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("Overheads (§3.3), seed {seed}:\n");
    println!(
        "(a) Profiling: {} profiles over {} agents generated in {profiling_ms:.1} ms \
         (one-off, amortised over every workflow)",
        store.all().len(),
        lib.len()
    );

    // (b) DAG creation: orchestration share of workflow time.
    let report = session
        .execute(&base.clone().stt(SttChoice::Gpu))
        .expect("run succeeds")
        .into_closed_loop()
        .expect("closed-loop report");
    println!(
        "(b) DAG creation: {:.2}s of {:.1}s total = {:.2}% of execution time \
         (paper claims <1%)",
        report.orchestration_s,
        report.makespan_s,
        100.0 * report.orchestration_fraction()
    );

    // (c) Workflow-aware vs workflow-blind cluster management.
    // Hybrid STT finishes ~half-way through the run, so the early release
    // of its GPU worker is clearly visible.
    let aware = session
        .execute(
            &base
                .clone()
                .labeled("workflow-aware")
                .stt(SttChoice::Hybrid)
                .workflow_aware(true),
        )
        .expect("run succeeds")
        .into_closed_loop()
        .expect("closed-loop report");
    let blind = session
        .execute(
            &base
                .clone()
                .labeled("workflow-blind")
                .stt(SttChoice::Hybrid)
                .workflow_aware(false),
        )
        .expect("run succeeds")
        .into_closed_loop()
        .expect("closed-loop report");
    println!(
        "(c) Workflow-aware release: {:.1} Wh vs {:.1} Wh blind \
         ({:.1}% energy saved by returning idle agents' GPUs early)",
        aware.energy_allocated_wh,
        blind.energy_allocated_wh,
        100.0 * (1.0 - aware.energy_allocated_wh / blind.energy_allocated_wh)
    );
    println!(
        "    makespans: aware {:.1}s, blind {:.1}s (release is off the critical path)",
        aware.makespan_s, blind.makespan_s
    );

    let path = write_bench_json(
        "overheads",
        &OverheadResults {
            seed,
            profiling_ms,
            profiles: store.all().len(),
            agents: lib.len(),
            orchestration_s: report.orchestration_s,
            orchestration_fraction: report.orchestration_fraction(),
            aware_energy_wh: aware.energy_allocated_wh,
            blind_energy_wh: blind.energy_allocated_wh,
            aware_makespan_s: aware.makespan_s,
            blind_makespan_s: blind.makespan_s,
        },
    )
    .expect("results file writes");
    println!("\n(wrote {})", path.display());
}
