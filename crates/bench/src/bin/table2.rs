//! Regenerates Table 2 of the paper: energy and execution time of each
//! Speech-to-Text configuration, paper vs measured.
//!
//! Run with `cargo run -p murakkab-bench --bin table2 [seed]`.

use murakkab::report::render_table2;
use murakkab_bench::{headline_claims, run_table2_configs, write_bench_json, PAPER_TABLE2, SEED};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(SEED);
    let reports = run_table2_configs(seed).expect("table 2 runs succeed");

    println!("Table 2: Energy and execution time of each configuration (seed {seed})\n");
    let rows: Vec<_> = reports
        .iter()
        .zip(PAPER_TABLE2.iter())
        .map(|(r, &(_, wh, s))| (r, wh, s))
        .collect();
    println!("{}", render_table2(&rows));

    let (speedup, eff) = headline_claims(&reports);
    println!("Headline (§4, Murakkab picks the CPU config under MIN_COST):");
    println!("  speedup vs baseline:            {speedup:.2}x   (paper: ~3.4x)");
    println!("  energy efficiency vs baseline:  {eff:.2}x   (paper: ~4.5x)");

    let path = write_bench_json("table2", &reports).expect("results file writes");
    println!("\n(wrote {})", path.display());
}
