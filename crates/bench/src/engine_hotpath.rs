//! Engine hot-path scoreboard: single-core events/sec and steady-state
//! allocation counts of one engine cell, pinned against pre-change
//! golden digests.
//!
//! Two workloads, both on one core so the number measures per-event
//! cost and not parallelism:
//!
//! 1. the simspeed workload at `shards = 1, threads = 1` — the same
//!    captured arrival log as `BENCH_simspeed.json`'s first row, so the
//!    digest golden is shared with that scoreboard;
//! 2. the committed trace fixture `traces/overload_small.json`,
//!    replayed via [`murakkab_trace::RunTrace::verify_replay`] — the
//!    fixture's recorded digest is the golden.
//!
//! Every run asserts its digest equals the pre-change golden before a
//! single rate is reported: an "optimization" that changes a report is
//! a determinism break, not a speedup. Allocation counts come from a
//! counting `#[global_allocator]` installed by the root binary
//! (`src/bin/engine_hotpath.rs`) and threaded in as a closure, so the
//! library itself stays allocator-agnostic (criterion and tests link it
//! without the counter).

use murakkab::scenario::Session;
use murakkab::FleetReport;
use serde::Serialize;

use crate::simspeed::{simspeed_log, simspeed_scenario, SIMSPEED_HORIZON_S};
use crate::write_bench_json;

/// Timed iterations per workload; the best (lowest wall-clock) run is
/// the reported rate, the first run supplies the allocation count.
pub const HOTPATH_ITERS: usize = 3;

/// Path of the committed trace fixture the replay workload drives.
pub const HOTPATH_TRACE_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../traces/overload_small.json"
);

/// Pre-change golden digest of the full-horizon simspeed workload at
/// `shards = 1` (any thread count — the digest is thread-invariant).
/// Matches the committed `BENCH_simspeed.json` shards=1 rows.
pub const HOTPATH_GOLDEN_DIGEST_FULL: u64 = 0xea62_6496_fa46_806f;

/// Pre-change golden digest of the quick-horizon (240 s) simspeed
/// workload at `shards = 1` — the CI variant of the same assertion.
pub const HOTPATH_GOLDEN_DIGEST_QUICK: u64 = 0x1633_34b3_c5b0_74d3;

/// Pre-change (PR 8, BTreeMap-keyed engine) single-thread baseline on
/// the full-horizon simspeed workload, events per wall-second. The
/// committed `BENCH_engine_hotpath.json` must show
/// `simspeed.events_per_wall_s >= 2x` this figure.
pub const PRE_ARENA_EVENTS_PER_WALL_S: f64 = 818_708.0;

/// Pre-change heap allocations per engine event on the same workload
/// (alloc + realloc + alloc_zeroed, counted across the whole run).
pub const PRE_ARENA_ALLOCS_PER_EVENT: f64 = 25.13;

/// One measured workload of the hot-path scoreboard.
#[derive(Debug, Clone, Serialize)]
pub struct HotpathRow {
    /// Workload label.
    pub workload: String,
    /// Engine events processed by one run.
    pub events: u64,
    /// Best wall-clock over [`HOTPATH_ITERS`] runs, seconds.
    pub wall_s_best: f64,
    /// Events per wall-second at the best run.
    pub events_per_wall_s: f64,
    /// Heap allocations across one full run (`None` without the
    /// counting allocator).
    pub allocations: Option<u64>,
    /// Allocations per engine event (`None` without the counter).
    pub allocs_per_event: Option<f64>,
    /// Report digest, asserted equal to the pre-change golden.
    pub digest: String,
}

fn time_runs<F: FnMut() -> (u64, u64)>(
    iters: usize,
    alloc_count: Option<&dyn Fn() -> u64>,
    mut run: F,
) -> (u64, f64, Option<u64>, u64) {
    let mut best = f64::INFINITY;
    let mut events = 0;
    let mut digest = 0;
    let mut allocs = None;
    for i in 0..iters {
        let before = alloc_count.map(|f| f());
        let start = std::time::Instant::now();
        let (ev, dg) = run();
        let wall = start.elapsed().as_secs_f64();
        if i == 0 {
            allocs = alloc_count.map(|f| f() - before.unwrap_or(0));
        }
        events = ev;
        digest = dg;
        if wall < best {
            best = wall;
        }
    }
    (events, best, allocs, digest)
}

fn row(
    workload: &str,
    events: u64,
    wall_s_best: f64,
    allocations: Option<u64>,
    digest: u64,
) -> HotpathRow {
    HotpathRow {
        workload: workload.to_string(),
        events,
        wall_s_best,
        events_per_wall_s: events as f64 / wall_s_best.max(1e-9),
        allocations,
        allocs_per_event: allocations.map(|a| a as f64 / (events.max(1)) as f64),
        digest: format!("{digest:#018x}"),
    }
}

/// The engine hot-path bench driver: runs both single-core workloads,
/// asserts each digest against its pre-change golden, prints the
/// scoreboard and writes `BENCH_engine_hotpath.json`. `quick` trims the
/// simspeed horizon to 240 s (CI mode; the trace fixture is already
/// small). `alloc_count` reads the process-wide allocation counter when
/// the caller installed one.
///
/// # Panics
///
/// Panics if a run fails, a digest diverges from its golden, or the
/// results file fails to write — bench binaries want loud failures.
pub fn engine_hotpath_main(seed: u64, quick: bool, alloc_count: Option<&dyn Fn() -> u64>) {
    let horizon_s = if quick { 240.0 } else { SIMSPEED_HORIZON_S };
    let golden = if quick {
        HOTPATH_GOLDEN_DIGEST_QUICK
    } else {
        HOTPATH_GOLDEN_DIGEST_FULL
    };
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!(
        "Engine hot-path scoreboard (seed {seed}{}): simspeed shards=1 threads=1 over \
         {horizon_s}s + trace fixture replay, best of {HOTPATH_ITERS} on {host_cores} core(s)\n",
        if quick { ", quick" } else { "" },
    );

    // Workload 1: the simspeed arrival log on one cell, one thread.
    let log = simspeed_log(seed, horizon_s);
    let scenario = simspeed_scenario(seed, &log, 1, 1, horizon_s);
    let session = Session::new(&scenario).expect("session builds");
    let (events, wall, allocs, digest) = time_runs(HOTPATH_ITERS, alloc_count, || {
        let executed = session.execute(&scenario).expect("simspeed run");
        let digest = executed.digest();
        let report: FleetReport = executed.into_open_loop().expect("open-loop report");
        (report.events_processed, digest)
    });
    if golden != 0 {
        assert_eq!(
            digest, golden,
            "simspeed digest diverged from the pre-change golden"
        );
    } else {
        println!("  (no golden pinned for this horizon; measured {digest:#018x})");
    }
    let simspeed = row("simspeed shards=1 threads=1", events, wall, allocs, digest);

    // Workload 2: the committed trace fixture, replayed and verified
    // against its own recorded digest (the pre-change golden).
    let trace =
        murakkab_trace::RunTrace::from_json_file(HOTPATH_TRACE_FIXTURE).expect("fixture loads");
    let (t_events, t_wall, t_allocs, t_digest) = time_runs(HOTPATH_ITERS, alloc_count, || {
        let report = trace
            .verify_replay()
            .expect("fixture replays bit-identical");
        let fleet = report.open_loop().expect("open-loop fixture");
        (fleet.events_processed, report.digest())
    });
    let replay = row("trace fixture replay", t_events, t_wall, t_allocs, t_digest);

    let speedup = simspeed.events_per_wall_s / PRE_ARENA_EVENTS_PER_WALL_S.max(1e-9);
    println!(
        "  {:>28} | {:>8} {:>12} | {:>12} {:>11} | digest",
        "workload", "wall s", "events/s", "allocs", "allocs/ev"
    );
    for r in [&simspeed, &replay] {
        println!(
            "  {:>28} | {:>8.2} {:>12.0} | {:>12} {:>11} | {}",
            r.workload,
            r.wall_s_best,
            r.events_per_wall_s,
            r.allocations.map_or("-".into(), |a| a.to_string()),
            r.allocs_per_event.map_or("-".into(), |a| format!("{a:.1}")),
            r.digest,
        );
    }
    if PRE_ARENA_EVENTS_PER_WALL_S > 0.0 && !quick {
        println!(
            "\n  {speedup:.2}x vs pre-arena baseline ({PRE_ARENA_EVENTS_PER_WALL_S:.0} ev/s, \
             {PRE_ARENA_ALLOCS_PER_EVENT:.1} allocs/ev)"
        );
    }

    #[derive(Serialize)]
    struct Baseline {
        events_per_wall_s: f64,
        allocs_per_event: f64,
        note: &'static str,
    }
    #[derive(Serialize)]
    struct EngineHotpathBench {
        seed: u64,
        quick: bool,
        host_cores: usize,
        iterations: usize,
        baseline_pre_arena: Baseline,
        speedup_vs_pre_arena: f64,
        simspeed: HotpathRow,
        trace_replay: HotpathRow,
    }
    let path = write_bench_json(
        "engine_hotpath",
        &EngineHotpathBench {
            seed,
            quick,
            host_cores,
            iterations: HOTPATH_ITERS,
            baseline_pre_arena: Baseline {
                events_per_wall_s: PRE_ARENA_EVENTS_PER_WALL_S,
                allocs_per_event: PRE_ARENA_ALLOCS_PER_EVENT,
                note: "single-thread full-horizon simspeed workload, measured at the \
                       commit before the arena refactor on a 1-core host",
            },
            speedup_vs_pre_arena: speedup,
            simspeed,
            trace_replay: replay,
        },
    )
    .expect("results file writes");
    println!("\n(wrote {})", path.display());
}
