//! Shared harness for the benchmark binaries and criterion benches.
//!
//! One function per evaluation artifact: each returns the full set of
//! reports the corresponding table/figure is built from, so the
//! `figure3`/`table2`/`table1`/`overheads`/`fleet` binaries and the
//! criterion benches measure exactly the same runs. Every binary also
//! writes its results to `BENCH_<name>.json` via [`write_bench_json`].

pub mod engine_hotpath;
pub mod geo;
pub mod simspeed;
pub use engine_hotpath::{engine_hotpath_main, HotpathRow};
pub use geo::{geo_main, run_geo_sweep, GeoRow};
pub use simspeed::{run_simspeed_grid, simspeed_main, SimSpeedRow};

use std::path::PathBuf;

use murakkab::fleet::CellPolicy;
use murakkab::runtime::SttChoice;
use murakkab::scenario::{Scenario, Session};
use murakkab::{FleetReport, RunReport, ServingMode};
use murakkab_sim::{SimDuration, SimError, SimRng};
use murakkab_traffic::{AdmissionConfig, ArrivalLog, ArrivalProcess};

/// The default experiment seed (any seed reproduces the paper's shape;
/// this one is used for the committed EXPERIMENTS.md numbers).
pub const SEED: u64 = 42;

/// Paper reference values for Table 2: `(label, energy Wh, time s)`.
pub const PAPER_TABLE2: [(&str, f64, f64); 4] = [
    ("Baseline", 155.0, 285.0),
    ("Murakkab CPU", 34.0, 83.0),
    ("Murakkab GPU", 43.0, 77.0),
    ("Murakkab GPU + CPU", 42.0, 77.0),
];

/// Runs the four Video Understanding configurations of Figure 3 / Table 2
/// in the paper's row order: baseline, CPU, GPU, GPU+CPU.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_table2_configs(seed: u64) -> Result<Vec<RunReport>, SimError> {
    let base = Scenario::closed_loop("Murakkab CPU")
        .seed(seed)
        .stt(SttChoice::Cpu);
    let session = Session::new(&base)?;
    let mut reports = vec![murakkab::run_baseline_video_understanding(seed)?];
    for scenario in [
        base.clone(),
        base.clone().labeled("Murakkab GPU").stt(SttChoice::Gpu),
        base.labeled("Murakkab GPU + CPU").stt(SttChoice::Hybrid),
    ] {
        reports.push(session.execute(&scenario)?.into_closed_loop()?);
    }
    Ok(reports)
}

/// Headline claims derived from the Table 2 runs: `(speedup, energy
/// efficiency)` of the constraint-chosen Murakkab config vs the baseline.
pub fn headline_claims(reports: &[RunReport]) -> (f64, f64) {
    let baseline = &reports[0];
    // MIN_COST picks the CPU configuration (§4).
    let chosen = &reports[1];
    (
        chosen.speedup_vs(baseline),
        chosen.energy_efficiency_vs(baseline),
    )
}

/// The fleet sweep's base offered load (requests per second) and the
/// multipliers swept over it — chosen so the low point is comfortably
/// underloaded and the high point clearly overloads the paper testbed.
pub const FLEET_BASE_RATE: f64 = 0.15;

/// Offered-load multipliers of the fleet sweep.
pub const FLEET_LOAD_FACTORS: [f64; 3] = [0.5, 1.0, 3.0];

/// Arrival horizon of each fleet sweep point, seconds.
pub const FLEET_HORIZON_S: f64 = 600.0;

/// The arrival processes the fleet bench sweeps: smooth Poisson and a
/// bursty MMPP with the same long-run rate.
pub fn fleet_processes(rate_per_s: f64) -> Vec<(&'static str, ArrivalProcess)> {
    vec![
        ("poisson", ArrivalProcess::Poisson { rate_per_s }),
        (
            "bursty",
            ArrivalProcess::Mmpp {
                // Same mean rate, concentrated in ON bursts: 1/4 duty
                // cycle at 4x the rate.
                on_rate_per_s: rate_per_s * 4.0,
                off_rate_per_s: 0.0,
                mean_on_s: 30.0,
                mean_off_s: 90.0,
            },
        ),
    ]
}

/// Runs a fleet sweep over the given load factors and processes,
/// admission control on.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_fleet_sweep_with(
    seed: u64,
    factors: &[f64],
    horizon_s: f64,
    processes_per_rate: usize,
) -> Result<Vec<FleetReport>, SimError> {
    // One session serves every sweep point: all scenarios share the
    // paper-testbed cluster and the seed.
    let probe = Scenario::open_loop(
        "sweep",
        ArrivalProcess::Poisson {
            rate_per_s: FLEET_BASE_RATE,
        },
        horizon_s,
    )
    .seed(seed);
    let session = Session::new(&probe)?;
    let mut reports = Vec::new();
    for &factor in factors {
        let rate = FLEET_BASE_RATE * factor;
        for (name, process) in fleet_processes(rate).into_iter().take(processes_per_rate) {
            let label = format!("{name} x{factor}");
            let scenario = Scenario::open_loop(&label, process, horizon_s).seed(seed);
            reports.push(session.execute(&scenario)?.into_open_loop()?);
        }
    }
    Ok(reports)
}

/// Runs the full fleet sweep: every arrival process × every offered-load
/// factor, admission control on.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_fleet_sweep(seed: u64) -> Result<Vec<FleetReport>, SimError> {
    run_fleet_sweep_with(seed, &FLEET_LOAD_FACTORS, FLEET_HORIZON_S, usize::MAX)
}

/// Nodes in the shard-scaling sweep's cluster — fixed across shard
/// counts, so the sweep isolates the scheduler architecture (one
/// monolithic engine vs N cells) on identical hardware. Sixteen nodes
/// keep every cell at two nodes even at the widest shard count (a cell
/// needs room for its own LLM serving stack next to its tool pools).
pub const FLEET_SHARD_NODES: usize = 16;

/// Shard counts swept at the overload point.
pub const FLEET_SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Offered rate of the shard sweep (well past the single-cell knee).
pub const FLEET_SHARD_RATE: f64 = 0.8;

/// Admission config for the shard sweep: the front door is sized to the
/// offered load so serving capacity — the thing sharding scales — is the
/// binding constraint, not the token bucket.
pub fn shard_sweep_admission() -> AdmissionConfig {
    AdmissionConfig {
        enabled: true,
        rate_per_s: FLEET_SHARD_RATE * 1.5,
        burst: 16.0,
        max_queue: 16,
        slack_per_backlog: 0.5,
    }
}

/// Captures the shard sweep's overloaded Poisson stream as an
/// [`ArrivalLog`] — the same fork path `Runtime::serve` uses, so a
/// live [`FLEET_SHARD_RATE`] run and its replay see identical instants.
pub fn shard_sweep_log(seed: u64, horizon_s: f64) -> ArrivalLog {
    let process = ArrivalProcess::Poisson {
        rate_per_s: FLEET_SHARD_RATE,
    };
    let mut rng = SimRng::new(seed).fork("fleet").fork("arrivals");
    ArrivalLog::record(&process, &mut rng, SimDuration::from_secs_f64(horizon_s))
}

/// The shard sweep's scenario for one shard count: the captured log
/// replayed with the front door from [`shard_sweep_admission`] and a
/// fleet-wide in-flight budget that cells split between them, on a
/// cluster of `nodes` VMs.
pub fn shard_sweep_scenario(
    seed: u64,
    log: &ArrivalLog,
    shards: usize,
    horizon_s: f64,
    nodes: usize,
) -> Scenario {
    Scenario::open_loop(
        &format!("shards={shards}"),
        ArrivalProcess::Replay { log: log.clone() },
        horizon_s,
    )
    .seed(seed)
    .cluster(murakkab_hardware::catalog::nd96amsr_a100_v4(), nodes)
    .shards(shards)
    .router(CellPolicy::LeastLoaded)
    .max_inflight(24)
    .admission(shard_sweep_admission())
}

/// Runs the shard-scaling sweep: one overloaded Poisson stream is
/// captured into an [`ArrivalLog`] and replayed at every shard count on
/// the same [`FLEET_SHARD_NODES`]-node cluster, so every point sees
/// byte-identical traffic.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_fleet_shard_sweep(
    seed: u64,
    shard_counts: &[usize],
    horizon_s: f64,
) -> Result<Vec<FleetReport>, SimError> {
    let log = shard_sweep_log(seed, horizon_s);
    // One session serves every shard count (same cluster, same seed).
    let probe = shard_sweep_scenario(seed, &log, 1, horizon_s, FLEET_SHARD_NODES);
    let session = Session::new(&probe)?;
    shard_counts
        .iter()
        .map(|&shards| {
            let scenario = shard_sweep_scenario(seed, &log, shards, horizon_s, FLEET_SHARD_NODES);
            session.execute(&scenario)?.into_open_loop()
        })
        .collect()
}

/// Nodes in the disagg sweep's fixed cluster — small enough that the
/// overload point is cheap to reach, large enough that a disaggregated
/// NVLM pair (3 + 5 GPUs) coexists with every tool pool.
pub const DISAGG_NODES: usize = 4;

/// Offered rate of the disagg sweep, requests per second — well past
/// the colocated knee on [`DISAGG_NODES`] nodes, so the serving regime
/// (not the hardware) is the binding constraint.
pub const DISAGG_RATE: f64 = 0.40;

/// Arrival horizon of the disagg sweep, seconds.
pub const DISAGG_HORIZON_S: f64 = 600.0;

/// Admission config for the disagg sweep: the front door is sized to
/// the offered load so serving capacity — the thing the backend changes
/// — is the binding constraint, not the token bucket.
pub fn disagg_admission() -> AdmissionConfig {
    AdmissionConfig {
        enabled: true,
        rate_per_s: DISAGG_RATE * 1.5,
        burst: 16.0,
        max_queue: 16,
        slack_per_backlog: 0.5,
    }
}

/// Captures the disagg sweep's overloaded Poisson stream as an
/// [`ArrivalLog`] — the same fork path `Runtime::serve` uses, so every
/// backend replays byte-identical traffic.
pub fn disagg_log(seed: u64, horizon_s: f64) -> ArrivalLog {
    let process = ArrivalProcess::Poisson {
        rate_per_s: DISAGG_RATE,
    };
    let mut rng = SimRng::new(seed).fork("fleet").fork("arrivals");
    ArrivalLog::record(&process, &mut rng, SimDuration::from_secs_f64(horizon_s))
}

/// The disagg sweep's scenario for one backend: the captured log
/// replayed on a single engine cell under the given serving regime, on
/// the fixed [`DISAGG_NODES`]-node cluster.
pub fn disagg_scenario(
    seed: u64,
    log: &ArrivalLog,
    serving: ServingMode,
    horizon_s: f64,
) -> Scenario {
    Scenario::open_loop(
        serving.tag(),
        ArrivalProcess::Replay { log: log.clone() },
        horizon_s,
    )
    .seed(seed)
    .cluster(murakkab_hardware::catalog::nd96amsr_a100_v4(), DISAGG_NODES)
    .max_inflight(24)
    .admission(disagg_admission())
    .serving(serving)
}

/// Runs the serving-backend sweep: one overloaded arrival log captured
/// once and replayed against the colocated and disaggregated backends
/// on the same [`DISAGG_NODES`]-node cluster. Returns `[colocated,
/// disaggregated]`.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_disagg_sweep(seed: u64, horizon_s: f64) -> Result<Vec<FleetReport>, SimError> {
    let log = disagg_log(seed, horizon_s);
    // One session serves both backends (same cluster, same seed).
    let probe = disagg_scenario(seed, &log, ServingMode::Colocated, horizon_s);
    let session = Session::new(&probe)?;
    [ServingMode::Colocated, ServingMode::Disaggregated]
        .into_iter()
        .map(|mode| {
            let scenario = disagg_scenario(seed, &log, mode, horizon_s);
            session.execute(&scenario)?.into_open_loop()
        })
        .collect()
}

/// Writes a machine-readable results file `BENCH_<name>.json` next to the
/// human-readable table every bench binary prints, so the perf trajectory
/// accumulates across runs.
///
/// # Errors
///
/// Propagates serialization and IO failures.
pub fn write_bench_json(
    name: &str,
    value: &impl serde::Serialize,
) -> Result<PathBuf, std::io::Error> {
    let path = PathBuf::from(format!("BENCH_{name}.json"));
    let json =
        serde_json::to_string_pretty(value).map_err(|e| std::io::Error::other(e.to_string()))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// The fleet bench driver: prints the load sweep, runs the
/// admission-control ablation and the shard-scaling sweep at the
/// overload point, and writes `BENCH_fleet.json` (`sweep` +
/// `shard_scaling` sections). `quick` trims every axis to its smallest
/// point (one load point, shards {1, 2}, short horizon) so CI can
/// exercise the full path on every push.
///
/// # Panics
///
/// Panics if a sweep run or the results file fails — bench binaries want
/// loud failures.
pub fn fleet_main(seed: u64, quick: bool) {
    let (factors, horizon_s, processes_per_rate): (&[f64], f64, usize) = if quick {
        (&FLEET_LOAD_FACTORS[..1], 240.0, 1)
    } else {
        (&FLEET_LOAD_FACTORS, FLEET_HORIZON_S, usize::MAX)
    };
    println!(
        "Fleet serving sweep (seed {seed}{}): {} load points, {horizon_s}s horizon\n",
        if quick { ", quick" } else { "" },
        factors.len(),
    );

    let reports = run_fleet_sweep_with(seed, factors, horizon_s, processes_per_rate)
        .expect("fleet sweep runs");
    for report in &reports {
        println!(
            "== {} ({:.3} req/s offered, admission {}) ==",
            report.label,
            report.offered_rate_per_s,
            if report.admission_enabled {
                "on"
            } else {
                "off"
            }
        );
        println!("{}", report.summary_line());
        println!("{}", report.class_table());
        println!(
            "  rejected: {} rate / {} deadline / {} queue-full | util GPU {:.1}% CPU {:.1}% | \
             autoscale {}↑ {}↓ | rebalancer hints {}\n",
            report.rejected_rate,
            report.rejected_deadline,
            report.rejected_queue_full,
            report.gpu_util_avg_pct,
            report.cpu_util_avg_pct,
            report.pool_scale_ups,
            report.pool_scale_downs,
            report.rebalance_actions,
        );
    }

    // Admission-control ablation at the overload point (the sweep's last
    // run load factor; labels derive from the same constants the sweep
    // uses).
    let top_factor = factors[factors.len() - 1];
    let overload = FLEET_BASE_RATE * top_factor;
    let (gated_name, process) = fleet_processes(overload).remove(0);
    let open = Scenario::open_loop(&format!("no-admission x{top_factor}"), process, horizon_s)
        .seed(seed)
        .admission(AdmissionConfig::disabled())
        .run()
        .expect("no-admission run")
        .into_open_loop()
        .expect("open-loop report");
    let gated_label = format!("{gated_name} x{top_factor}");
    let gated = reports
        .iter()
        .find(|r| r.label == gated_label)
        .expect("overload point exists");
    println!("Admission-control ablation at {overload:.3} req/s (poisson):");
    println!(
        "  with admission:    SLO attainment {:>5.1}%  ({} admitted, {} rejected)",
        100.0 * gated.slo_attainment,
        gated.admitted,
        gated.rejections()
    );
    println!(
        "  without admission: SLO attainment {:>5.1}%  ({} admitted, p95 worst-class {:.0}s)",
        100.0 * open.slo_attainment,
        open.admitted,
        open.classes
            .iter()
            .filter_map(|c| c.p95_s)
            .fold(0.0_f64, f64::max),
    );

    // Shard-scaling sweep at the overload point: the same captured
    // arrival log replayed at every shard count on identical hardware.
    let shard_counts: &[usize] = if quick {
        &FLEET_SHARD_SWEEP[..2]
    } else {
        &FLEET_SHARD_SWEEP
    };
    println!(
        "\nShard scaling at {FLEET_SHARD_RATE:.2} req/s on {FLEET_SHARD_NODES} nodes \
         (replayed log, {horizon_s}s horizon):"
    );
    let shard_reports =
        run_fleet_shard_sweep(seed, shard_counts, horizon_s).expect("shard sweep runs");
    let base_goodput = shard_reports[0].goodput_per_min.max(1e-9);
    for report in &shard_reports {
        println!(
            "  {:<10} {:>6.2}/min good ({:.2}x)  SLO {:>5.1}%  {} admitted  {} steals  GPU {:.1}%",
            report.label,
            report.goodput_per_min,
            report.goodput_per_min / base_goodput,
            100.0 * report.slo_attainment,
            report.admitted,
            report.steals,
            report.gpu_util_avg_pct,
        );
        println!("{}", report.cell_table());
    }

    use serde::Serialize;
    #[derive(Serialize)]
    struct FleetBench {
        sweep: Vec<FleetReport>,
        shard_scaling: Vec<FleetReport>,
    }
    let mut sweep = reports;
    sweep.push(open);
    let path = write_bench_json(
        "fleet",
        &FleetBench {
            sweep,
            shard_scaling: shard_reports,
        },
    )
    .expect("results file writes");
    println!("\n(wrote {})", path.display());
}

/// The disagg bench driver: captures one overloaded arrival log,
/// replays it against the colocated and disaggregated serving backends
/// on the same fixed cluster, prints the per-class latency/TTFT tables
/// and writes `BENCH_disagg.json`. `quick` shortens the horizon so CI
/// exercises the full path on every push.
///
/// # Panics
///
/// Panics if a run or the results file fails — bench binaries want loud
/// failures.
pub fn disagg_main(seed: u64, quick: bool) {
    let horizon_s = if quick { 240.0 } else { DISAGG_HORIZON_S };
    println!(
        "Serving-backend sweep (seed {seed}{}): colocated vs disaggregated, \
         {DISAGG_RATE} req/s replayed over {horizon_s}s on {DISAGG_NODES} nodes\n",
        if quick { ", quick" } else { "" },
    );

    let reports = run_disagg_sweep(seed, horizon_s).expect("disagg sweep runs");
    for report in &reports {
        println!("== {} ==", report.serving);
        println!("{}", report.summary_line());
        println!("{}", report.class_table());
        println!(
            "  util GPU {:.1}% (prefill-phase {:.1}%, decode-phase {:.1}%) | \
             rejected {} | steals {}\n",
            report.gpu_util_avg_pct,
            report.prefill_util_avg_pct,
            report.decode_util_avg_pct,
            report.rejections(),
            report.steals,
        );
    }

    let (colocated, disagg) = (&reports[0], &reports[1]);
    println!("Headline at the overload point (same replayed log, same cluster):");
    println!(
        "  goodput:   {:>6.2}/min colocated vs {:>6.2}/min disaggregated ({:.2}x)",
        colocated.goodput_per_min,
        disagg.goodput_per_min,
        disagg.goodput_per_min / colocated.goodput_per_min.max(1e-9),
    );
    println!(
        "  TTFT p95 (worst class): {:>7.2}s colocated vs {:>7.2}s disaggregated",
        colocated.worst_ttft_p95(),
        disagg.worst_ttft_p95(),
    );
    println!(
        "  SLO attainment: {:>5.1}% colocated vs {:>5.1}% disaggregated",
        100.0 * colocated.slo_attainment,
        100.0 * disagg.slo_attainment,
    );

    use serde::Serialize;
    #[derive(Serialize)]
    struct DisaggHeadline {
        goodput_ratio: f64,
        ttft_p95_worst_colocated_s: f64,
        ttft_p95_worst_disaggregated_s: f64,
    }
    #[derive(Serialize)]
    struct DisaggBench {
        headline: DisaggHeadline,
        sweep: Vec<FleetReport>,
    }
    let path = write_bench_json(
        "disagg",
        &DisaggBench {
            headline: DisaggHeadline {
                goodput_ratio: disagg.goodput_per_min / colocated.goodput_per_min.max(1e-9),
                ttft_p95_worst_colocated_s: colocated.worst_ttft_p95(),
                ttft_p95_worst_disaggregated_s: disagg.worst_ttft_p95(),
            },
            sweep: reports,
        },
    )
    .expect("results file writes");
    println!("\n(wrote {})", path.display());
}

/// Nodes in the what-if bench's fixed cluster — enough that the
/// 4-shard counterfactual keeps two nodes per cell (a cell needs room
/// for its own serving stack next to its tool pools), small enough
/// that the shard-sweep rate overloads the single-cell baseline.
pub const WHATIF_NODES: usize = 8;

/// The what-if bench's capture scenario: an overloaded Poisson stream
/// (the shard sweep's [`FLEET_SHARD_RATE`]) on the fixed
/// [`WHATIF_NODES`]-node cluster, captured with per-request records
/// (colocated, one cell — the baseline every counterfactual diffs
/// against).
pub fn whatif_capture_scenario(seed: u64, horizon_s: f64) -> Scenario {
    Scenario::open_loop(
        "overload-capture",
        ArrivalProcess::Poisson {
            rate_per_s: FLEET_SHARD_RATE,
        },
        horizon_s,
    )
    .seed(seed)
    .cluster(murakkab_hardware::catalog::nd96amsr_a100_v4(), WHATIF_NODES)
    .max_inflight(24)
    .admission(shard_sweep_admission())
}

/// The what-if bench's counterfactual set: the serving-backend swap and
/// the shard-count swap, each replaying the captured traffic.
pub fn whatif_counterfactuals() -> Vec<murakkab_trace::WhatIf> {
    vec![
        murakkab_trace::WhatIf::named("disaggregated").serving(ServingMode::Disaggregated),
        murakkab_trace::WhatIf::named("shards4").shards(4),
    ]
}

/// The what-if bench driver: captures one overloaded run as a
/// [`murakkab_trace::RunTrace`], verifies bit-identical replay, then
/// replays the captured traffic against the disaggregated backend and a
/// 4-cell fleet, printing each [`murakkab_trace::TraceDiff`] and
/// writing `BENCH_whatif.json`. `quick` shortens the horizon so CI
/// exercises the full path on every push.
///
/// # Panics
///
/// Panics if a run or the results file fails — bench binaries want loud
/// failures.
pub fn whatif_main(seed: u64, quick: bool) {
    let horizon_s = if quick { 240.0 } else { DISAGG_HORIZON_S };
    println!(
        "What-if sweep (seed {seed}{}): {FLEET_SHARD_RATE} req/s captured over {horizon_s}s \
         on {WHATIF_NODES} nodes, then replayed counterfactually\n",
        if quick { ", quick" } else { "" },
    );

    let scenario = whatif_capture_scenario(seed, horizon_s);
    let trace = murakkab_trace::RunTrace::capture(&scenario).expect("capture runs");
    println!("captured: {}", trace.summary_line());
    trace.verify_replay().expect("replay is bit-identical");
    println!("replay verified: digest matches\n");

    let mut diffs = Vec::new();
    for mods in whatif_counterfactuals() {
        let report = murakkab_trace::whatif(&trace, &mods).expect("counterfactual runs");
        println!("{}", report.diff.render_human());
        println!("{}\n", report.diff.summary_line());
        diffs.push(report.diff);
    }

    use serde::Serialize;
    #[derive(Serialize)]
    struct WhatIfBench {
        seed: u64,
        horizon_s: f64,
        captured_requests: u64,
        captured_steals: u64,
        trace_digest: u64,
        baseline: FleetReport,
        counterfactuals: Vec<murakkab_trace::TraceDiff>,
    }
    let baseline = trace
        .baseline
        .as_ref()
        .expect("captured traces embed their report")
        .open_loop()
        .expect("open-loop capture")
        .clone();
    let path = write_bench_json(
        "whatif",
        &WhatIfBench {
            seed,
            horizon_s,
            captured_requests: trace.requests.len() as u64,
            captured_steals: trace.steals.len() as u64,
            trace_digest: trace.digest.expect("captured traces carry digests"),
            baseline,
            counterfactuals: diffs,
        },
    )
    .expect("results file writes");
    println!("(wrote {})", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_reproduces_paper_bands() {
        let reports = run_table2_configs(SEED).unwrap();
        assert_eq!(reports.len(), 4);
        let (speedup, eff) = headline_claims(&reports);
        assert!((2.8..=4.2).contains(&speedup), "speedup {speedup:.2}");
        assert!((3.0..=5.5).contains(&eff), "efficiency {eff:.2}");
    }
}
