//! Shared harness for the benchmark binaries and criterion benches.
//!
//! One function per evaluation artifact: each returns the full set of
//! [`RunReport`]s the corresponding table/figure is built from, so the
//! `figure3`/`table2`/`table1`/`overheads` binaries and the criterion
//! benches measure exactly the same runs.

use murakkab::runtime::{RunOptions, Runtime, SttChoice};
use murakkab::RunReport;
use murakkab_sim::SimError;

/// The default experiment seed (any seed reproduces the paper's shape;
/// this one is used for the committed EXPERIMENTS.md numbers).
pub const SEED: u64 = 42;

/// Paper reference values for Table 2: `(label, energy Wh, time s)`.
pub const PAPER_TABLE2: [(&str, f64, f64); 4] = [
    ("Baseline", 155.0, 285.0),
    ("Murakkab CPU", 34.0, 83.0),
    ("Murakkab GPU", 43.0, 77.0),
    ("Murakkab GPU + CPU", 42.0, 77.0),
];

/// Runs the four Video Understanding configurations of Figure 3 / Table 2
/// in the paper's row order: baseline, CPU, GPU, GPU+CPU.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_table2_configs(seed: u64) -> Result<Vec<RunReport>, SimError> {
    let rt = Runtime::paper_testbed(seed);
    Ok(vec![
        murakkab::run_baseline_video_understanding(seed)?,
        rt.run_video_understanding(RunOptions::labeled("Murakkab CPU").stt(SttChoice::Cpu))?,
        rt.run_video_understanding(RunOptions::labeled("Murakkab GPU").stt(SttChoice::Gpu))?,
        rt.run_video_understanding(
            RunOptions::labeled("Murakkab GPU + CPU").stt(SttChoice::Hybrid),
        )?,
    ])
}

/// Headline claims derived from the Table 2 runs: `(speedup, energy
/// efficiency)` of the constraint-chosen Murakkab config vs the baseline.
pub fn headline_claims(reports: &[RunReport]) -> (f64, f64) {
    let baseline = &reports[0];
    // MIN_COST picks the CPU configuration (§4).
    let chosen = &reports[1];
    (
        chosen.speedup_vs(baseline),
        chosen.energy_efficiency_vs(baseline),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_reproduces_paper_bands() {
        let reports = run_table2_configs(SEED).unwrap();
        assert_eq!(reports.len(), 4);
        let (speedup, eff) = headline_claims(&reports);
        assert!((2.8..=4.2).contains(&speedup), "speedup {speedup:.2}");
        assert!((3.0..=5.5).contains(&eff), "efficiency {eff:.2}");
    }
}
