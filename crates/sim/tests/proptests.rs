//! Property-based tests for the simulation substrate.

use murakkab_sim::{EventQueue, Histogram, SimDuration, SimRng, SimTime, TimeSeries};
use proptest::prelude::*;

/// Reference model of the pre-calendar event queue: a flat list popped
/// by minimum `(time, insertion sequence)` — exactly the binary heap
/// ordering the calendar queue replaced, FIFO tie-break included.
struct ModelQueue {
    events: Vec<(SimTime, u64, usize)>,
    next_seq: u64,
}

impl ModelQueue {
    fn new() -> Self {
        ModelQueue {
            events: Vec::new(),
            next_seq: 0,
        }
    }

    fn schedule(&mut self, at: SimTime, payload: usize) {
        self.events.push((at, self.next_seq, payload));
        self.next_seq += 1;
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.events.iter().map(|&(at, _, _)| at).min()
    }

    fn pop(&mut self) -> Option<(SimTime, usize)> {
        let i = self
            .events
            .iter()
            .enumerate()
            .min_by_key(|&(_, &(at, seq, _))| (at, seq))
            .map(|(i, _)| i)?;
        let (at, _, payload) = self.events.remove(i);
        Some((at, payload))
    }

    fn pop_before(&mut self, bound: SimTime, inclusive: bool) -> Option<(SimTime, usize)> {
        let head = self.peek_time()?;
        let within = if inclusive {
            head <= bound
        } else {
            head < bound
        };
        if within {
            self.pop()
        } else {
            None
        }
    }
}

proptest! {
    /// The calendar queue agrees with the heap model over arbitrary
    /// interleavings of schedules (near ties, far-future events crossing
    /// year refills), plain pops, and bounded pops — including
    /// re-schedules at the current instant after partial drains.
    #[test]
    fn calendar_queue_matches_heap_model(
        ops in prop::collection::vec((0u8..4, 0u64..5_000), 1..300)
    ) {
        let mut q = EventQueue::new();
        let mut model = ModelQueue::new();
        let mut payload = 0usize;
        for &(kind, dt) in &ops {
            match kind {
                0 => {
                    // Near schedule: same-instant FIFO ties when dt = 0.
                    let at = q.now() + SimDuration::from_micros(dt);
                    q.schedule(at, payload);
                    model.schedule(at, payload);
                    payload += 1;
                }
                1 => {
                    // Far schedule: lands beyond the current bucket year,
                    // exercising the overflow heap and year refills.
                    let at = q.now() + SimDuration::from_micros(dt * 1_000);
                    q.schedule(at, payload);
                    model.schedule(at, payload);
                    payload += 1;
                }
                2 => {
                    let got = q.pop();
                    let want = model.pop();
                    prop_assert_eq!(got.map(|e| (e.at, e.payload)), want);
                }
                _ => {
                    let bound = q.now() + SimDuration::from_micros(dt / 2);
                    let inclusive = dt % 2 == 0;
                    let got = q.pop_before(bound, inclusive);
                    let want = model.pop_before(bound, inclusive);
                    prop_assert_eq!(got.map(|e| (e.at, e.payload)), want);
                }
            }
            prop_assert_eq!(q.peek_time(), model.peek_time());
            prop_assert_eq!(q.len(), model.events.len());
        }
        while let Some(e) = q.pop() {
            prop_assert_eq!(Some((e.at, e.payload)), model.pop());
        }
        prop_assert!(model.events.is_empty());
    }

    /// Popping the queue always yields non-decreasing timestamps, and ties
    /// preserve insertion order, for any schedule.
    #[test]
    fn queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let events = q.drain_ordered();
        prop_assert_eq!(events.len(), times.len());
        for w in events.windows(2) {
            prop_assert!(w[0].at <= w[1].at);
            if w[0].at == w[1].at {
                // Same timestamp: insertion (payload) order must hold.
                prop_assert!(w[0].payload < w[1].payload);
            }
        }
    }

    /// The integral over [a, c) equals integral [a, b) + [b, c) for any
    /// split point: the series integral is additive.
    #[test]
    fn series_integral_is_additive(
        mut pts in prop::collection::vec((0u64..10_000, -100.0f64..100.0), 1..50),
        a in 0u64..10_000,
        b in 0u64..10_000,
        c in 0u64..10_000,
    ) {
        pts.sort_by_key(|&(t, _)| t);
        pts.dedup_by_key(|&mut (t, _)| t);
        let mut ts = TimeSeries::new("p");
        for &(t, v) in &pts {
            ts.record(SimTime::from_micros(t), v);
        }
        let mut cuts = [a, b, c];
        cuts.sort_unstable();
        let [a, b, c] = cuts.map(SimTime::from_micros);
        let whole = ts.integral(a, c);
        let split = ts.integral(a, b) + ts.integral(b, c);
        prop_assert!((whole - split).abs() < 1e-6, "{whole} != {split}");
    }

    /// value_at agrees with the last change point at or before t.
    #[test]
    fn series_value_at_matches_reference(
        mut pts in prop::collection::vec((0u64..1_000, -10.0f64..10.0), 1..30),
        probe in 0u64..1_200,
    ) {
        pts.sort_by_key(|&(t, _)| t);
        pts.dedup_by_key(|&mut (t, _)| t);
        let mut ts = TimeSeries::new("p");
        for &(t, v) in &pts {
            ts.record(SimTime::from_micros(t), v);
        }
        let reference = pts
            .iter()
            .rev()
            .find(|&&(t, _)| t <= probe)
            .map_or(0.0, |&(_, v)| v);
        // The series dedups equal consecutive values, but value_at must
        // still agree with the reference step function.
        prop_assert_eq!(ts.value_at(SimTime::from_micros(probe)), reference);
    }

    /// SimTime arithmetic: (t + d) - t == d whenever no saturation occurs.
    #[test]
    fn time_add_sub_roundtrip(t in 0u64..u64::MAX / 2, d in 0u64..u64::MAX / 2) {
        let t0 = SimTime::from_micros(t);
        let d0 = SimDuration::from_micros(d);
        prop_assert_eq!((t0 + d0) - t0, d0);
    }

    /// Forked RNG streams are reproducible functions of (seed, label).
    #[test]
    fn rng_fork_reproducible(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let mut a = SimRng::new(seed).fork(&label);
        let mut b = SimRng::new(seed).fork(&label);
        for _ in 0..8 {
            prop_assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    /// Histogram count/mean bookkeeping is exact, and quantile(1.0) bounds
    /// every observation.
    #[test]
    fn histogram_bookkeeping(values in prop::collection::vec(0.0f64..1e6, 1..100)) {
        let mut h = Histogram::exponential(1.0, 10.0, 7);
        for &v in &values {
            h.observe(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-6);
        let top = h.quantile(1.0);
        prop_assert!(values.iter().all(|&v| v <= top + 1e-9));
    }

    /// On uniform-width buckets, every quantile estimate lands within one
    /// bucket width of the exact nearest-rank sample quantile, is
    /// monotone in q, and never exceeds the largest observation.
    #[test]
    fn histogram_quantiles_bracket_exact_quantiles(
        mut values in prop::collection::vec(0.0f64..100.0, 1..120),
        probes in prop::collection::vec(0.0f64..1.0, 1..12),
    ) {
        const WIDTH: f64 = 10.0;
        let bounds: Vec<f64> = (1..=10).map(|i| f64::from(i) * WIDTH).collect();
        let mut h = Histogram::new(bounds);
        for &v in &values {
            h.observe(v);
        }
        values.sort_by(f64::total_cmp);
        let mut sorted_probes = probes.clone();
        sorted_probes.sort_by(f64::total_cmp);
        let mut last = 0.0f64;
        for &q in &sorted_probes {
            let rank = (q * values.len() as f64).ceil().max(1.0) as usize;
            let exact = values[rank.min(values.len()) - 1];
            let est = h.quantile(q);
            prop_assert!(
                (est - exact).abs() <= WIDTH + 1e-9,
                "q={q}: estimate {est} vs exact {exact}"
            );
            prop_assert!(est <= h.max() + 1e-9);
            prop_assert!(est + 1e-9 >= last, "quantile must be monotone in q");
            last = est;
        }
    }
}
