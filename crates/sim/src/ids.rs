//! Typed identifiers.
//!
//! Every domain object (nodes, devices, tasks, requests, ...) is keyed by a
//! cheap `u64` newtype generated with `define_id!`. Typed ids prevent the
//! classic bug of indexing one table with another table's key.

/// Defines a `Copy` newtype identifier over `u64` with a paired allocator.
///
/// The generated type implements `Debug`, `Display`, ordering, hashing and
/// serde. `<Name>::allocator()` returns a [`IdAllocator`] producing
/// sequential ids starting at zero.
///
/// # Examples
///
/// ```
/// murakkab_sim::define_id!(WidgetId, "widget");
///
/// let mut alloc = WidgetId::allocator();
/// let a = alloc.next_id();
/// let b = alloc.next_id();
/// assert_ne!(a, b);
/// assert_eq!(format!("{a}"), "widget-0");
/// ```
#[macro_export]
macro_rules! define_id {
    ($name:ident, $prefix:literal) => {
        /// Typed identifier (sequential `u64` under the hood).
        #[derive(
            Debug,
            Clone,
            Copy,
            PartialEq,
            Eq,
            PartialOrd,
            Ord,
            Hash,
            serde::Serialize,
            serde::Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Creates an id from a raw value (mostly for tests/fixtures).
            pub const fn from_raw(raw: u64) -> Self {
                $name(raw)
            }

            /// The raw numeric value.
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns a fresh sequential allocator for this id type.
            pub fn allocator() -> $crate::ids::IdAllocator<$name> {
                $crate::ids::IdAllocator::new($name)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "-{}"), self.0)
            }
        }
    };
}

/// Sequential allocator for a typed id.
#[derive(Debug, Clone)]
pub struct IdAllocator<T> {
    next: u64,
    make: fn(u64) -> T,
}

impl<T> IdAllocator<T> {
    /// Creates an allocator that wraps raw values with `make`.
    pub fn new(make: fn(u64) -> T) -> Self {
        IdAllocator { next: 0, make }
    }

    /// Returns the next id in sequence.
    pub fn next_id(&mut self) -> T {
        let id = (self.make)(self.next);
        self.next += 1;
        id
    }

    /// Number of ids handed out so far.
    pub fn issued(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    define_id!(TestId, "test");

    #[test]
    fn ids_are_sequential_and_typed() {
        let mut alloc = TestId::allocator();
        assert_eq!(alloc.next_id(), TestId::from_raw(0));
        assert_eq!(alloc.next_id(), TestId::from_raw(1));
        assert_eq!(alloc.issued(), 2);
        assert_eq!(TestId::from_raw(7).raw(), 7);
        assert_eq!(format!("{}", TestId::from_raw(3)), "test-3");
    }

    #[test]
    fn ids_serialize_as_plain_numbers() {
        let json = serde_json::to_string(&TestId::from_raw(5)).unwrap();
        assert_eq!(json, "5");
        let back: TestId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, TestId::from_raw(5));
    }
}
