//! Span-oriented execution traces.
//!
//! A [`TraceLog`] records what ran where and when, as closed spans on named
//! *lanes* (one lane per workflow component in Figure 3: "LLM (Text)",
//! "Speech-to-Text", "LLM (Embeddings)", "Object Detection"). The ASCII
//! renderer reproduces the paper's timeline plots in a terminal.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// A closed interval of work on a lane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Lane (component/resource) the span belongs to.
    pub lane: String,
    /// Human-readable label (task name, request id, ...).
    pub label: String,
    /// Span start time.
    pub start: SimTime,
    /// Span end time (`end >= start`).
    pub end: SimTime,
}

impl Span {
    /// The span's duration.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_duration_since(self.start)
    }
}

/// An append-only log of spans.
///
/// # Examples
///
/// ```
/// use murakkab_sim::{SimTime, TraceLog};
///
/// let mut log = TraceLog::new();
/// log.record("Speech-to-Text", "scene-0", SimTime::ZERO, SimTime::from_secs(6));
/// assert_eq!(log.spans().len(), 1);
/// assert_eq!(log.makespan(), SimTime::from_secs(6));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceLog {
    spans: Vec<Span>,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Records a span.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn record(
        &mut self,
        lane: impl Into<String>,
        label: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) {
        assert!(end >= start, "span ends before it starts");
        self.spans.push(Span {
            lane: lane.into(),
            label: label.into(),
            start,
            end,
        });
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans on a given lane, in recording order.
    pub fn lane_spans(&self, lane: &str) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.lane == lane).collect()
    }

    /// Distinct lane names, in first-appearance order.
    pub fn lanes(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for s in &self.spans {
            if !seen.contains(&s.lane.as_str()) {
                seen.push(s.lane.as_str());
            }
        }
        seen
    }

    /// The latest span end (simulation makespan as observed by the trace).
    pub fn makespan(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total busy time per lane (sum of span durations; overlapping spans
    /// count multiply, which is intentional — it measures work, not wall
    /// clock).
    pub fn busy_per_lane(&self) -> BTreeMap<String, SimDuration> {
        let mut out: BTreeMap<String, SimDuration> = BTreeMap::new();
        for s in &self.spans {
            *out.entry(s.lane.clone()).or_insert(SimDuration::ZERO) += s.duration();
        }
        out
    }

    /// Merges another log into this one.
    pub fn merge(&mut self, other: &TraceLog) {
        self.spans.extend(other.spans.iter().cloned());
    }

    /// Exports the log in Chrome trace-event format (the JSON array
    /// flavour), loadable in `chrome://tracing` or Perfetto. Lanes map to
    /// thread ids so each component gets its own row.
    pub fn to_chrome_trace(&self) -> String {
        let lanes = self.lanes();
        let tid = |lane: &str| -> usize { lanes.iter().position(|l| *l == lane).unwrap_or(0) + 1 };
        let mut events = Vec::with_capacity(self.spans.len() + lanes.len());
        for (i, lane) in lanes.iter().enumerate() {
            events.push(serde_json::json!({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": i + 1,
                "args": {"name": lane},
            }));
        }
        for s in &self.spans {
            events.push(serde_json::json!({
                "name": s.label,
                "cat": s.lane,
                "ph": "X",
                "pid": 1,
                "tid": tid(&s.lane),
                "ts": s.start.as_micros(),
                "dur": s.duration().as_micros(),
            }));
        }
        serde_json::to_string(&events).expect("trace events serialize")
    }

    /// Renders the log as an ASCII Gantt chart, `width` characters wide.
    ///
    /// Each lane gets one row; cells show `#` where at least one span is
    /// active and `.` where the lane is idle. This is the terminal stand-in
    /// for the paper's Figure 3 timeline plots.
    pub fn render_ascii(&self, width: usize) -> String {
        let width = width.max(10);
        let makespan = self.makespan();
        if makespan == SimTime::ZERO {
            return String::from("(empty trace)\n");
        }
        let total = makespan.as_secs_f64();
        let lanes = self.lanes();
        let name_w = lanes.iter().map(|l| l.len()).max().unwrap_or(0).max(4);
        let mut out = String::new();
        out.push_str(&format!(
            "{:>name_w$} 0s{}{:.0}s\n",
            "",
            " ".repeat(width.saturating_sub(6)),
            total
        ));
        for lane in &lanes {
            let mut cells = vec!['.'; width];
            for s in self.spans.iter().filter(|s| &s.lane == lane) {
                let a = ((s.start.as_secs_f64() / total) * width as f64).floor() as usize;
                let b = ((s.end.as_secs_f64() / total) * width as f64).ceil() as usize;
                for c in cells.iter_mut().take(b.min(width)).skip(a.min(width)) {
                    *c = '#';
                }
            }
            out.push_str(&format!(
                "{:>name_w$} {}\n",
                lane,
                cells.iter().collect::<String>()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn records_and_queries_spans() {
        let mut log = TraceLog::new();
        log.record("stt", "s0", t(0), t(6));
        log.record("llm", "sum0", t(6), t(20));
        log.record("stt", "s1", t(6), t(12));
        assert_eq!(log.spans().len(), 3);
        assert_eq!(log.lane_spans("stt").len(), 2);
        assert_eq!(log.lanes(), vec!["stt", "llm"]);
        assert_eq!(log.makespan(), t(20));
        let busy = log.busy_per_lane();
        assert_eq!(busy["stt"], SimDuration::from_secs(12));
        assert_eq!(busy["llm"], SimDuration::from_secs(14));
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn rejects_inverted_span() {
        let mut log = TraceLog::new();
        log.record("x", "bad", t(5), t(1));
    }

    #[test]
    fn ascii_render_shape() {
        let mut log = TraceLog::new();
        log.record("a", "first-half", t(0), t(50));
        log.record("b", "second-half", t(50), t(100));
        let art = log.render_ascii(40);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains('#'));
        // Lane `a` busy early, idle late; lane `b` the reverse.
        let a_row = lines[1].split_whitespace().last().unwrap();
        let b_row = lines[2].split_whitespace().last().unwrap();
        assert!(a_row.starts_with('#'));
        assert!(a_row.ends_with('.'));
        assert!(b_row.starts_with('.'));
        assert!(b_row.ends_with('#'));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert_eq!(TraceLog::new().render_ascii(40), "(empty trace)\n");
    }

    #[test]
    fn merge_combines_spans() {
        let mut a = TraceLog::new();
        a.record("x", "1", t(0), t(1));
        let mut b = TraceLog::new();
        b.record("y", "2", t(1), t(2));
        a.merge(&b);
        assert_eq!(a.spans().len(), 2);
        assert_eq!(a.makespan(), t(2));
    }

    #[test]
    fn chrome_trace_has_metadata_and_complete_events() {
        let mut log = TraceLog::new();
        log.record("stt", "scene-0", t(2), t(8));
        log.record("llm", "sum-0", t(8), t(20));
        let json = log.to_chrome_trace();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = parsed.as_array().unwrap();
        // 2 lane-name metadata events + 2 spans.
        assert_eq!(events.len(), 4);
        let span = events
            .iter()
            .find(|e| e["name"] == "scene-0")
            .expect("span present");
        assert_eq!(span["ph"], "X");
        assert_eq!(span["ts"], 2_000_000);
        assert_eq!(span["dur"], 6_000_000);
        // Lanes get distinct tids.
        let tids: std::collections::BTreeSet<u64> = events
            .iter()
            .filter(|e| e["ph"] == "X")
            .map(|e| e["tid"].as_u64().unwrap())
            .collect();
        assert_eq!(tids.len(), 2);
    }

    #[test]
    fn spans_serialize() {
        let mut log = TraceLog::new();
        log.record("stt", "s0", t(0), t(6));
        let json = serde_json::to_string(&log).unwrap();
        let back: TraceLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back.spans(), log.spans());
    }
}
