//! Deterministic event queue.
//!
//! A thin wrapper over [`BinaryHeap`] that breaks timestamp ties by a
//! monotonically increasing sequence number. Determinism matters: two events
//! scheduled for the same instant must always pop in insertion order, or the
//! same seed could produce different traces across runs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled event: a payload tagged with its due time and sequence.
#[derive(Debug, Clone)]
pub struct Event<T> {
    /// The instant at which the event fires.
    pub at: SimTime,
    /// Insertion sequence number (unique per queue; breaks ties).
    pub seq: u64,
    /// The event payload.
    pub payload: T,
}

impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Event<T> {}

impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we need earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timed events.
///
/// # Examples
///
/// ```
/// use murakkab_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "b");
/// q.schedule(SimTime::from_secs(1), "a");
/// q.schedule(SimTime::from_secs(1), "a2"); // same time: FIFO within tie
/// let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
/// assert_eq!(order, vec!["a", "a2", "b"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Event<T>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedules `payload` to fire at `at` and returns its sequence number.
    pub fn schedule(&mut self, at: SimTime, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, payload });
        seq
    }

    /// Removes and returns the earliest event, or `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if an event would be popped before the previously popped
    /// event's time — that would mean something scheduled into the past,
    /// which is a simulation logic error.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let ev = self.heap.pop()?;
        assert!(
            ev.at >= self.last_popped,
            "event queue time went backwards: {} < {}",
            ev.at,
            self.last_popped
        );
        self.last_popped = ev.at;
        Some(ev)
    }

    /// The due time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The time of the last popped event (the queue's notion of "now").
    pub fn now(&self) -> SimTime {
        self.last_popped
    }

    /// Drains every pending event in firing order (useful in tests).
    pub fn drain_ordered(&mut self) -> Vec<Event<T>> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(ev) = self.pop() {
            out.push(ev);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3u32);
        q.schedule(SimTime::from_secs(1), 1u32);
        q.schedule(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = q.drain_ordered().into_iter().map(|e| e.payload).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100u32 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = q.drain_ordered().into_iter().map(|e| e.payload).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_now_track_state() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(7));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn scheduling_into_the_past_is_caught_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
        q.pop();
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "a");
        let e = q.pop().unwrap();
        assert_eq!(e.payload, "a");
        // Schedule relative to the popped time, as the engine does.
        q.schedule(e.at + SimDuration::from_secs(1), "b");
        assert_eq!(q.pop().unwrap().at, SimTime::from_secs(2));
    }
}
