//! Deterministic event queue.
//!
//! A two-level bucketed (calendar-style) queue that breaks timestamp
//! ties by a monotonically increasing sequence number. Determinism
//! matters: two events scheduled for the same instant must always pop
//! in insertion order, or the same seed could produce different traces
//! across runs.
//!
//! # Structure
//!
//! Near-future events live in a ring of 256 time buckets (one
//! "year"), each covering `width` microseconds. Only the current
//! bucket is kept sorted — descending by `(at, seq)` so the earliest
//! event is a `Vec::pop` off the tail; future buckets take unsorted
//! `push`es and are sorted once, when the cursor reaches them. Events
//! past the year boundary fall back to a [`BinaryHeap`] (heap order
//! across bucket boundaries, exactly the pre-calendar behavior) and
//! are dealt into a fresh year when the current one is exhausted. The
//! bucket width adapts to an integer EWMA of observed inter-pop gaps,
//! so a year tracks the workload's event density.
//!
//! The hot path this buys: `schedule` at-or-near "now" is an append to
//! the current bucket's tail and `pop` is a tail `Vec::pop` — no
//! sift-up/down over the whole pending set, and no per-event heap
//! allocation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Buckets per calendar year.
const BUCKETS: usize = 256;

/// Lower bound of the adaptive bucket width, microseconds. Keeps
/// all-ties workloads (EWMA gap ~0) from collapsing the year span to
/// nothing.
const MIN_WIDTH_US: u64 = 100;

/// Bucket width before any pops have been observed, microseconds.
const DEFAULT_WIDTH_US: u64 = 1024;

/// Bucket width as a multiple of the EWMA inter-pop gap. Wider than
/// the classic ~1-event-per-bucket calendar sizing: the engine
/// schedules completions whole task-durations ahead, and a year must
/// span that horizon or most schedules detour through the far heap.
const WIDTH_GAP_MULT: u64 = 8;

/// Cap on a single observed gap entering the width EWMA, microseconds
/// (an idle stretch must not blow the next year up to centuries).
const MAX_GAP_US: u64 = 1_000_000_000;

/// A scheduled event: a payload tagged with its due time and sequence.
#[derive(Debug, Clone, Copy)]
pub struct Event<T> {
    /// The instant at which the event fires.
    pub at: SimTime,
    /// Insertion sequence number (unique per queue; breaks ties).
    pub seq: u64,
    /// The event payload.
    pub payload: T,
}

impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Event<T> {}

impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we need earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timed events.
///
/// # Examples
///
/// ```
/// use murakkab_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "b");
/// q.schedule(SimTime::from_secs(1), "a");
/// q.schedule(SimTime::from_secs(1), "a2"); // same time: FIFO within tie
/// let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
/// assert_eq!(order, vec!["a", "a2", "b"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    /// The current year's buckets. `buckets[cur]` is sorted descending
    /// by `(at, seq)`; buckets past `cur` are unsorted until reached.
    buckets: Vec<Vec<Event<T>>>,
    /// Index of the bucket being drained.
    cur: usize,
    /// Start of the current year, microseconds.
    year_start_us: u64,
    /// Width of one bucket, microseconds.
    width_us: u64,
    /// Events at or past the year boundary, in heap order.
    far: BinaryHeap<Event<T>>,
    /// Total pending events across buckets and `far`.
    len: usize,
    /// Pending events residing in buckets (`len - far.len()`); lets
    /// `peek_time` skip the bucket scan when everything is far.
    in_buckets: usize,
    /// Integer EWMA of inter-pop gaps, microseconds — the width of the
    /// next year's buckets.
    ewma_gap_us: u64,
    next_seq: u64,
    last_popped: SimTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..BUCKETS).map(|_| Vec::new()).collect(),
            cur: 0,
            year_start_us: 0,
            width_us: DEFAULT_WIDTH_US,
            far: BinaryHeap::new(),
            len: 0,
            in_buckets: 0,
            ewma_gap_us: DEFAULT_WIDTH_US,
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// End of the current year, microseconds (saturating: a huge
    /// adaptive width must not wrap the boundary).
    fn year_end_us(&self) -> u64 {
        self.year_start_us
            .saturating_add(self.width_us.saturating_mul(BUCKETS as u64))
    }

    /// Schedules `payload` to fire at `at` and returns its sequence number.
    pub fn schedule(&mut self, at: SimTime, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let ev = Event { at, seq, payload };
        let at_us = at.as_micros();
        if at_us >= self.year_end_us() {
            self.far.push(ev);
        } else {
            // Buckets before the cursor are already drained; anything
            // aimed there lands in the current bucket instead (the pop
            // assert still catches genuinely backwards schedules).
            let idx = ((at_us.saturating_sub(self.year_start_us) / self.width_us) as usize)
                .clamp(self.cur, BUCKETS - 1);
            if idx == self.cur {
                // Keep the current bucket sorted descending by
                // (at, seq): binary-search the slot. Scheduling at
                // "now" — the common engine case — appends at the tail.
                let v = &mut self.buckets[idx];
                let pos = v.partition_point(|e| (e.at, e.seq) > (at, seq));
                v.insert(pos, ev);
            } else {
                self.buckets[idx].push(ev);
            }
            self.in_buckets += 1;
        }
        self.len += 1;
        seq
    }

    /// Advances `cur` to the first non-empty bucket, sorting each
    /// freshly reached bucket and dealing a new year out of `far` when
    /// the current one is exhausted. Requires `self.len > 0`.
    fn settle(&mut self) {
        loop {
            if !self.buckets[self.cur].is_empty() {
                return;
            }
            if self.cur + 1 < BUCKETS {
                self.cur += 1;
                let v = &mut self.buckets[self.cur];
                if v.len() > 1 {
                    v.sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
                }
            } else {
                self.refill();
            }
        }
    }

    /// Starts a fresh year at the earliest far event, re-sizing buckets
    /// to the observed inter-pop gap and dealing every far event inside
    /// the new span into its bucket.
    fn refill(&mut self) {
        let head = self
            .far
            .peek()
            .expect("pending events with empty buckets must sit in far");
        self.year_start_us = head.at.as_micros();
        self.width_us = (self.ewma_gap_us.saturating_mul(WIDTH_GAP_MULT)).max(MIN_WIDTH_US);
        self.cur = 0;
        let year_end = self.year_end_us();
        while let Some(head) = self.far.peek() {
            if head.at.as_micros() >= year_end {
                break;
            }
            let ev = self.far.pop().expect("peeked event pops");
            let idx = (((ev.at.as_micros() - self.year_start_us) / self.width_us) as usize)
                .min(BUCKETS - 1);
            self.buckets[idx].push(ev);
            self.in_buckets += 1;
        }
        let v = &mut self.buckets[0];
        if v.len() > 1 {
            v.sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
        }
    }

    /// Pops the tail of the settled current bucket, maintaining the
    /// backwards-time assert and the gap EWMA.
    fn pop_settled(&mut self) -> Event<T> {
        let ev = self.buckets[self.cur]
            .pop()
            .expect("settle leaves a non-empty current bucket");
        assert!(
            ev.at >= self.last_popped,
            "event queue time went backwards: {} < {}",
            ev.at,
            self.last_popped
        );
        let gap = (ev.at.as_micros() - self.last_popped.as_micros()).min(MAX_GAP_US);
        self.ewma_gap_us = (self.ewma_gap_us * 7 + gap) / 8;
        self.last_popped = ev.at;
        self.len -= 1;
        self.in_buckets -= 1;
        ev
    }

    /// Removes and returns the earliest event, or `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if an event would be popped before the previously popped
    /// event's time — that would mean something scheduled into the past,
    /// which is a simulation logic error.
    pub fn pop(&mut self) -> Option<Event<T>> {
        if self.len == 0 {
            return None;
        }
        self.settle();
        Some(self.pop_settled())
    }

    /// Removes and returns the earliest event if it fires within
    /// `bound` — at or before it when `inclusive`, strictly before
    /// otherwise. One settled check instead of a `peek_time` scan
    /// followed by a `pop`, which is what makes wide `step_while`
    /// drains cheap.
    ///
    /// # Panics
    ///
    /// As [`pop`](Self::pop).
    pub fn pop_before(&mut self, bound: SimTime, inclusive: bool) -> Option<Event<T>> {
        if self.len == 0 {
            return None;
        }
        self.settle();
        let at = self.buckets[self.cur]
            .last()
            .expect("settle leaves a non-empty current bucket")
            .at;
        let beyond = if inclusive { at > bound } else { at >= bound };
        if beyond {
            return None;
        }
        Some(self.pop_settled())
    }

    /// The due time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if self.in_buckets == 0 {
            return self.far.peek().map(|e| e.at);
        }
        for (i, bucket) in self.buckets.iter().enumerate().skip(self.cur) {
            if bucket.is_empty() {
                continue;
            }
            // The current bucket is sorted (tail = earliest); later
            // buckets are unsorted until the cursor reaches them.
            return if i == self.cur {
                bucket.last().map(|e| e.at)
            } else {
                bucket.iter().map(|e| e.at).min()
            };
        }
        self.far.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The time of the last popped event (the queue's notion of "now").
    pub fn now(&self) -> SimTime {
        self.last_popped
    }

    /// Drains every pending event in firing order (useful in tests).
    pub fn drain_ordered(&mut self) -> Vec<Event<T>> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(ev) = self.pop() {
            out.push(ev);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3u32);
        q.schedule(SimTime::from_secs(1), 1u32);
        q.schedule(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = q.drain_ordered().into_iter().map(|e| e.payload).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100u32 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = q.drain_ordered().into_iter().map(|e| e.payload).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_now_track_state() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(7));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn scheduling_into_the_past_is_caught_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
        q.pop();
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "a");
        let e = q.pop().unwrap();
        assert_eq!(e.payload, "a");
        // Schedule relative to the popped time, as the engine does.
        q.schedule(e.at + SimDuration::from_secs(1), "b");
        assert_eq!(q.pop().unwrap().at, SimTime::from_secs(2));
    }

    #[test]
    fn far_events_survive_year_refills() {
        // Spread events far past the initial year span so every one of
        // them routes through `far` and at least one refill.
        let mut q = EventQueue::new();
        let span_s = 3600; // hours past the default ~260 ms year
        for i in (0..50u64).rev() {
            q.schedule(SimTime::from_secs(i * span_s), i);
        }
        let order: Vec<u64> = q.drain_ordered().into_iter().map(|e| e.payload).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pop_before_respects_bound_and_inclusivity() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.schedule(SimTime::from_secs(3), "c");
        let bound = SimTime::from_secs(2);
        assert_eq!(q.pop_before(bound, false).unwrap().payload, "a");
        // "b" sits exactly on the bound: excluded strictly, taken inclusively.
        assert!(q.pop_before(bound, false).is_none());
        assert_eq!(q.pop_before(bound, true).unwrap().payload, "b");
        assert!(q.pop_before(bound, true).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().payload, "c");
    }

    #[test]
    fn schedule_at_now_lands_in_the_drained_bucket() {
        // Popping at t then scheduling at t again (the engine's
        // zero-delay completion pattern) must pop FIFO, even though the
        // bucket is mid-drain.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(100);
        q.schedule(t, 0u32);
        q.schedule(t, 1u32);
        assert_eq!(q.pop().unwrap().payload, 0);
        q.schedule(t, 2u32);
        assert_eq!(q.pop().unwrap().payload, 1);
        assert_eq!(q.pop().unwrap().payload, 2);
    }
}
