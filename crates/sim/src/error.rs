//! Simulation-layer error type.

use std::fmt;

/// Errors raised by the simulation substrate and the layers above it.
///
/// Higher-level crates define their own domain errors but typically wrap or
/// convert to `SimError` when crossing layer boundaries (the runtime's event
/// loop handles only this type).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// An entity (device, node, agent, endpoint) was not found by id/name.
    NotFound {
        /// Kind of entity looked up (e.g. `"node"`, `"agent"`).
        kind: &'static str,
        /// The identifier that failed to resolve.
        id: String,
    },
    /// A resource request could not be satisfied.
    ResourceExhausted {
        /// What ran out (e.g. `"gpu"`, `"kv-cache tokens"`).
        resource: String,
        /// Amount requested.
        requested: u64,
        /// Amount available at the time of the request.
        available: u64,
    },
    /// An operation was attempted in a state that does not permit it.
    InvalidState(String),
    /// Input failed validation (cycles in a DAG, bad parameters, ...).
    InvalidInput(String),
    /// An operation exceeded a configured deadline or budget.
    DeadlineExceeded(String),
    /// A constraint set was unsatisfiable (no feasible configuration).
    Unsatisfiable(String),
}

impl SimError {
    /// Shorthand constructor for [`SimError::NotFound`].
    pub fn not_found(kind: &'static str, id: impl Into<String>) -> Self {
        SimError::NotFound {
            kind,
            id: id.into(),
        }
    }

    /// Shorthand constructor for [`SimError::ResourceExhausted`].
    pub fn exhausted(resource: impl Into<String>, requested: u64, available: u64) -> Self {
        SimError::ResourceExhausted {
            resource: resource.into(),
            requested,
            available,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotFound { kind, id } => write!(f, "{kind} not found: {id}"),
            SimError::ResourceExhausted {
                resource,
                requested,
                available,
            } => write!(
                f,
                "resource exhausted: {resource} (requested {requested}, available {available})"
            ),
            SimError::InvalidState(msg) => write!(f, "invalid state: {msg}"),
            SimError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            SimError::DeadlineExceeded(msg) => write!(f, "deadline exceeded: {msg}"),
            SimError::Unsatisfiable(msg) => write!(f, "unsatisfiable constraints: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            SimError::not_found("node", "n3").to_string(),
            "node not found: n3"
        );
        assert_eq!(
            SimError::exhausted("gpu", 4, 1).to_string(),
            "resource exhausted: gpu (requested 4, available 1)"
        );
        assert!(SimError::InvalidState("x".into()).to_string().contains("x"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&SimError::InvalidInput("bad".into()));
    }
}
