//! Metrics recording over simulated time.
//!
//! The evaluation artifacts (Figure 3 utilization curves, Table 2 energy
//! integrals) are all derived from *step-function time series*: a value that
//! holds constant until the next recorded change. [`TimeSeries`] stores
//! those changes; integrals and window averages fall out exactly (no
//! sampling error), and fixed-interval samples are produced only for
//! plotting.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// A right-continuous step function of simulated time.
///
/// # Examples
///
/// ```
/// use murakkab_sim::{SimTime, TimeSeries};
///
/// let mut ts = TimeSeries::new("gpu_util");
/// ts.record(SimTime::ZERO, 0.0);
/// ts.record(SimTime::from_secs(10), 1.0);
/// ts.record(SimTime::from_secs(20), 0.0);
/// // Integral of utilization over [0, 30): 10 seconds at 1.0.
/// let area = ts.integral(SimTime::ZERO, SimTime::from_secs(30));
/// assert!((area - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    /// Change points `(t, v)`: value is `v` on `[t, next_t)`.
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records that the value becomes `v` at time `t`.
    ///
    /// Recording at a time equal to the last change overwrites it (the
    /// value "at" an instant is the latest write). Recording identical
    /// consecutive values is a no-op to keep the series compact.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last recorded change.
    pub fn record(&mut self, t: SimTime, v: f64) {
        if let Some(&(last_t, last_v)) = self.points.last() {
            assert!(t >= last_t, "time series {} went backwards", self.name);
            if t == last_t {
                self.points.last_mut().expect("non-empty").1 = v;
                return;
            }
            if (last_v - v).abs() < f64::EPSILON {
                return;
            }
        }
        self.points.push((t, v));
    }

    /// The value at instant `t` (zero before the first change point).
    pub fn value_at(&self, t: SimTime) -> f64 {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(i) => self.points[i].1,
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// The last recorded value (zero if empty).
    pub fn last_value(&self) -> f64 {
        self.points.last().map_or(0.0, |&(_, v)| v)
    }

    /// Exact integral `∫ v dt` over `[from, to)` in value·seconds.
    pub fn integral(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut cursor = from;
        let mut value = self.value_at(from);
        // Walk change points strictly inside (from, to).
        let start = self.points.partition_point(|&(pt, _)| pt <= from);
        for &(pt, v) in &self.points[start..] {
            if pt >= to {
                break;
            }
            acc += value * (pt - cursor).as_secs_f64();
            cursor = pt;
            value = v;
        }
        acc += value * (to - cursor).as_secs_f64();
        acc
    }

    /// Time-weighted average over `[from, to)`; zero for empty windows.
    pub fn average(&self, from: SimTime, to: SimTime) -> f64 {
        let span = to.saturating_duration_since(from).as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            self.integral(from, to) / span
        }
    }

    /// Samples the series at a fixed interval over `[from, to]` (inclusive
    /// of both endpoints), for plotting.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn sample(&self, from: SimTime, to: SimTime, interval: SimDuration) -> Vec<(f64, f64)> {
        assert!(!interval.is_zero(), "sample interval must be non-zero");
        let mut out = Vec::new();
        let mut t = from;
        loop {
            out.push((t.as_secs_f64(), self.value_at(t)));
            if t >= to {
                break;
            }
            t = (t + interval).min(to);
        }
        out
    }

    /// The maximum recorded value (zero if empty).
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Raw change points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// True if no change points have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Tracks busy capacity of a multi-unit resource (e.g. a 96-core CPU pool or
/// a bank of GPUs) and exposes a utilization [`TimeSeries`] in `[0, 1]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UtilizationTracker {
    capacity: f64,
    busy: f64,
    series: TimeSeries,
}

impl UtilizationTracker {
    /// Creates a tracker for a resource with the given total capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive.
    pub fn new(name: impl Into<String>, capacity: f64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        let mut series = TimeSeries::new(name);
        series.record(SimTime::ZERO, 0.0);
        UtilizationTracker {
            capacity,
            busy: 0.0,
            series,
        }
    }

    /// Marks `amount` units busy at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if the busy amount would exceed capacity (over-commit is a
    /// scheduler bug, not a runtime condition).
    pub fn acquire(&mut self, t: SimTime, amount: f64) {
        let next = self.busy + amount;
        assert!(
            next <= self.capacity + 1e-9,
            "{}: over-commit ({next} > {})",
            self.series.name(),
            self.capacity
        );
        self.busy = next.min(self.capacity);
        self.series.record(t, self.busy / self.capacity);
    }

    /// Sets the busy level to an absolute `units` value at time `t`
    /// (used when an external component — e.g. an LLM serving engine —
    /// reports its own utilization level rather than deltas).
    ///
    /// # Panics
    ///
    /// Panics if `units` exceeds capacity.
    pub fn set_level(&mut self, t: SimTime, units: f64) {
        assert!(
            units <= self.capacity + 1e-9,
            "{}: level over capacity ({units} > {})",
            self.series.name(),
            self.capacity
        );
        self.busy = units.clamp(0.0, self.capacity);
        self.series.record(t, self.busy / self.capacity);
    }

    /// Releases `amount` units at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if releasing more than is busy.
    pub fn release(&mut self, t: SimTime, amount: f64) {
        assert!(
            amount <= self.busy + 1e-9,
            "{}: release underflow ({amount} > {})",
            self.series.name(),
            self.busy
        );
        self.busy = (self.busy - amount).max(0.0);
        self.series.record(t, self.busy / self.capacity);
    }

    /// Current busy amount.
    pub fn busy(&self) -> f64 {
        self.busy
    }

    /// Total capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Free capacity.
    pub fn free(&self) -> f64 {
        (self.capacity - self.busy).max(0.0)
    }

    /// Current utilization fraction in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.busy / self.capacity
    }

    /// The utilization series (fraction of capacity over time).
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }
}

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A fixed-boundary histogram of `f64` observations.
///
/// Used for queueing-delay and latency distributions in endpoint stats.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds;
    /// an implicit overflow bucket captures everything above the last bound.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            sum: 0.0,
            count: 0,
            max: 0.0,
        }
    }

    /// Histogram with exponentially growing bounds, handy for latencies.
    pub fn exponential(start: f64, factor: f64, buckets: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && buckets > 0);
        let mut bounds = Vec::with_capacity(buckets);
        let mut b = start;
        for _ in 0..buckets {
            bounds.push(b);
            b *= factor;
        }
        Histogram::new(bounds)
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations (zero if none).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest observation seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Approximate quantile (`q` in `[0,1]`), linearly interpolated within
    /// the winning bucket (observations are assumed uniform inside a
    /// bucket, the usual Prometheus-style estimator). The overflow bucket
    /// reports the largest observation, and no estimate exceeds it.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if seen + c >= target {
                if i >= self.bounds.len() {
                    // Overflow bucket: unbounded above, so report the max.
                    return self.max;
                }
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                let frac = (target - seen) as f64 / c as f64;
                return (lower + frac * (upper - lower)).min(self.max);
            }
            seen += c;
        }
        self.max
    }

    /// The quantile estimates for each `q` in `qs` (convenience for the
    /// p50/p95/p99 triplets fleet reports are built from).
    pub fn percentiles(&self, qs: &[f64]) -> Vec<f64> {
        qs.iter().map(|&q| self.quantile(q)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn series_value_and_integral() {
        let mut ts = TimeSeries::new("x");
        ts.record(t(0), 2.0);
        ts.record(t(10), 4.0);
        assert_eq!(ts.value_at(t(0)), 2.0);
        assert_eq!(ts.value_at(t(9)), 2.0);
        assert_eq!(ts.value_at(t(10)), 4.0);
        assert_eq!(ts.value_at(t(100)), 4.0);
        // 10s at 2 + 10s at 4 = 60.
        assert!((ts.integral(t(0), t(20)) - 60.0).abs() < 1e-9);
        assert!((ts.average(t(0), t(20)) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn series_value_before_first_point_is_zero() {
        let mut ts = TimeSeries::new("x");
        ts.record(t(5), 7.0);
        assert_eq!(ts.value_at(t(0)), 0.0);
        assert!((ts.integral(t(0), t(10)) - 35.0).abs() < 1e-9);
    }

    #[test]
    fn series_same_time_overwrites_and_dedups() {
        let mut ts = TimeSeries::new("x");
        ts.record(t(0), 1.0);
        ts.record(t(0), 2.0);
        assert_eq!(ts.points().len(), 1);
        assert_eq!(ts.value_at(t(0)), 2.0);
        ts.record(t(5), 2.0); // no change: dropped
        assert_eq!(ts.points().len(), 1);
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn series_rejects_time_regression() {
        let mut ts = TimeSeries::new("x");
        ts.record(t(10), 1.0);
        ts.record(t(5), 2.0);
    }

    #[test]
    fn series_integral_partial_windows() {
        let mut ts = TimeSeries::new("x");
        ts.record(t(0), 1.0);
        ts.record(t(10), 0.0);
        assert!((ts.integral(t(5), t(15)) - 5.0).abs() < 1e-9);
        assert_eq!(ts.integral(t(15), t(5)), 0.0);
        assert_eq!(ts.integral(t(20), t(30)), 0.0);
    }

    #[test]
    fn series_sampling() {
        let mut ts = TimeSeries::new("x");
        ts.record(t(0), 1.0);
        ts.record(t(2), 3.0);
        let s = ts.sample(t(0), t(4), SimDuration::from_secs(1));
        assert_eq!(s.len(), 5);
        assert_eq!(s[0], (0.0, 1.0));
        assert_eq!(s[2], (2.0, 3.0));
        assert_eq!(s[4], (4.0, 3.0));
    }

    #[test]
    fn utilization_tracker_acquire_release() {
        let mut u = UtilizationTracker::new("cpu", 96.0);
        u.acquire(t(0), 48.0);
        assert_eq!(u.utilization(), 0.5);
        assert_eq!(u.free(), 48.0);
        u.acquire(t(5), 48.0);
        assert_eq!(u.utilization(), 1.0);
        u.release(t(10), 96.0);
        assert_eq!(u.busy(), 0.0);
        assert!((u.series().average(t(0), t(10)) - 0.75).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "over-commit")]
    fn utilization_tracker_rejects_overcommit() {
        let mut u = UtilizationTracker::new("gpu", 8.0);
        u.acquire(t(0), 9.0);
    }

    #[test]
    #[should_panic(expected = "release underflow")]
    fn utilization_tracker_rejects_underflow() {
        let mut u = UtilizationTracker::new("gpu", 8.0);
        u.release(t(0), 1.0);
    }

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new(vec![1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 138.875).abs() < 1e-9);
        assert_eq!(h.max(), 500.0);
        assert_eq!(h.quantile(0.25), 1.0);
        assert_eq!(h.quantile(1.0), 500.0);
    }

    #[test]
    fn histogram_quantiles_interpolate_within_bucket() {
        // 100 observations of 1..=100, one per unit, on decade buckets:
        // the rank-r observation is r, so pXX should land within one
        // bucket-width step of XX rather than snapping to an upper bound.
        let mut h = Histogram::new(vec![10.0, 50.0, 100.0, 1000.0]);
        for v in 1..=100 {
            h.observe(f64::from(v));
        }
        let ps = h.percentiles(&[0.5, 0.95, 0.99]);
        // p50: rank 50 is the last of the (10, 50] bucket -> exactly 50.
        assert!((ps[0] - 50.0).abs() < 1e-9, "p50 {}", ps[0]);
        // p95: rank 95 is 45/50 through the (50, 100] bucket -> 95.
        assert!((ps[1] - 95.0).abs() < 1e-9, "p95 {}", ps[1]);
        // p99: 49/50 through the same bucket -> 99.
        assert!((ps[2] - 99.0).abs() < 1e-9, "p99 {}", ps[2]);
        // Estimates never exceed the largest observation.
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn histogram_first_bucket_interpolates_from_zero() {
        let mut h = Histogram::new(vec![8.0, 16.0]);
        h.observe(2.0);
        h.observe(6.0);
        // Two observations in (0, 8]: p50 is half-way through the bucket,
        // clamped by nothing (4.0 < max 6.0).
        assert!((h.quantile(0.5) - 4.0).abs() < 1e-9);
        // p100 interpolates to the bucket top but clamps to the max seen.
        assert!((h.quantile(1.0) - 6.0).abs() < 1e-9);
    }

    /// Exact nearest-rank quantile of a sorted sample (the reference the
    /// histogram estimator is checked against).
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank.min(sorted.len()) - 1]
    }

    #[test]
    fn histogram_quantiles_track_exact_sample_quantiles() {
        // Seeded pseudo-random inputs (LCG): the estimate must land in
        // the same bucket as the exact nearest-rank quantile, i.e. within
        // one bucket width below the next bound, for every probe.
        let bounds: Vec<f64> = (1..=20).map(|i| f64::from(i) * 5.0).collect();
        let mut h = Histogram::new(bounds);
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut values = Vec::new();
        for _ in 0..500 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (state >> 11) as f64 / (1u64 << 53) as f64 * 99.0 + 0.5;
            h.observe(v);
            values.push(v);
        }
        values.sort_by(f64::total_cmp);
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&values, q);
            let est = h.quantile(q);
            // Same bucket: the estimate may be off by at most the width
            // of the bucket holding the exact quantile (5.0 here).
            assert!(
                (est - exact).abs() <= 5.0 + 1e-9,
                "q={q}: estimate {est} vs exact {exact}"
            );
            assert!(est <= h.max() + 1e-9, "q={q}: estimate above max");
        }
        // percentiles() is elementwise quantile().
        let qs = [0.5, 0.95, 0.99];
        assert_eq!(h.percentiles(&qs), qs.map(|q| h.quantile(q)).to_vec());
    }

    #[test]
    fn histogram_empty_is_all_zeros() {
        let h = Histogram::new(vec![1.0, 10.0]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0.0);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 0.0);
        }
        assert_eq!(h.percentiles(&[0.5, 0.99]), vec![0.0, 0.0]);
    }

    #[test]
    fn histogram_single_bucket_edge_cases() {
        // One bound: everything below it interpolates inside (0, b]; the
        // implicit overflow bucket reports the largest observation.
        let mut h = Histogram::new(vec![10.0]);
        for v in [2.0, 4.0, 6.0, 8.0] {
            h.observe(v);
        }
        // Rank r of 4 → r/4 through the (0, 10] bucket, clamped to max.
        assert!((h.quantile(0.25) - 2.5).abs() < 1e-9);
        assert!((h.quantile(0.5) - 5.0).abs() < 1e-9);
        assert!((h.quantile(1.0) - 8.0).abs() < 1e-9, "clamped to max");
        // All mass in the overflow bucket: every quantile is the max.
        let mut o = Histogram::new(vec![1.0]);
        for v in [50.0, 70.0, 90.0] {
            o.observe(v);
        }
        for q in [0.1, 0.5, 1.0] {
            assert_eq!(o.quantile(q), 90.0, "q={q}");
        }
    }

    #[test]
    fn histogram_exponential_bounds() {
        let h = Histogram::exponential(0.001, 10.0, 4);
        assert_eq!(h.bounds, vec![0.001, 0.01, 0.1, 1.0]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_bad_bounds() {
        Histogram::new(vec![1.0, 1.0]);
    }
}
