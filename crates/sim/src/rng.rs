//! Seeded, splittable randomness.
//!
//! All stochastic inputs (workload sizes, jitter, spot-preemption timing)
//! flow through [`SimRng`] so that a single `u64` seed reproduces an entire
//! experiment. Streams can be *forked* by label, which keeps independent
//! subsystems decoupled: adding a random draw in one subsystem does not
//! perturb another's sequence.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random source for the simulation.
#[derive(Debug, Clone)]
pub struct SimRng {
    rng: StdRng,
    seed: u64,
}

impl SimRng {
    /// Creates a source from a root seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Forks an independent stream identified by `label`.
    ///
    /// The child seed mixes the parent seed with an FNV-1a hash of the
    /// label, so `fork("workload")` yields the same stream regardless of
    /// how many draws the parent made before the fork.
    pub fn fork(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SimRng::new(self.seed ^ h.rotate_left(17))
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_range: lo > hi");
        if lo == hi {
            return lo;
        }
        self.rng.random_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn int_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "int_range: lo > hi");
        self.rng.random_range(lo..=hi)
    }

    /// Truncated-normal sample: mean `mu`, std `sigma`, clamped to
    /// `[mu - 3 sigma, mu + 3 sigma]` and to zero from below.
    ///
    /// Uses a Box–Muller transform so the crate needs no extra
    /// distribution dependencies.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        assert!(sigma >= 0.0, "normal: sigma must be non-negative");
        if sigma == 0.0 {
            return mu.max(0.0);
        }
        // Box–Muller; u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = mu + sigma * z;
        v.clamp((mu - 3.0 * sigma).max(0.0), mu + 3.0 * sigma)
    }

    /// Exponential sample with the given rate (events per unit time).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential: rate must be positive");
        let u = 1.0 - self.uniform();
        -u.ln() / rate
    }

    /// Short alias for [`SimRng::exponential`] — the inter-arrival sampler
    /// the open-loop traffic generators lean on.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exp(&mut self, rate: f64) -> f64 {
        self.exponential(rate)
    }

    /// Poisson sample with mean `lambda` (count of arrivals in a unit of
    /// time under rate `lambda`).
    ///
    /// Uses Knuth's product-of-uniforms method for small means and a
    /// rounded truncated-normal approximation for `lambda > 30` (where the
    /// Poisson is near-Gaussian and the exact method would need `O(λ)`
    /// draws).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "poisson: lambda must be non-negative");
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            return self.normal(lambda, lambda.sqrt()).round().max(0.0) as u64;
        }
        let limit = (-lambda).exp();
        let mut product = 1.0;
        let mut count = 0u64;
        loop {
            product *= self.uniform();
            if product <= limit {
                return count;
            }
            count += 1;
        }
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random element of `items`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let idx = self.int_range(0, items.len() as u64 - 1) as usize;
            Some(&items[idx])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.int_range(0, i as u64) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_draw_count() {
        let parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        // parent2 consumes some draws before forking.
        for _ in 0..10 {
            parent2.uniform();
        }
        let mut c1 = parent1.fork("workload");
        let mut c2 = parent2.fork("workload");
        assert_eq!(c1.uniform().to_bits(), c2.uniform().to_bits());
    }

    #[test]
    fn different_labels_differ() {
        let root = SimRng::new(7);
        let mut a = root.fork("a");
        let mut b = root.fork("b");
        let same = (0..16).all(|_| a.uniform().to_bits() == b.uniform().to_bits());
        assert!(!same, "fork streams for distinct labels should diverge");
    }

    #[test]
    fn normal_respects_clamp_and_mean() {
        let mut r = SimRng::new(1);
        let n = 10_000;
        let mu = 10.0;
        let sigma = 2.0;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.normal(mu, sigma);
            assert!(
                (4.0..=16.0).contains(&v),
                "sample {v} outside 3-sigma clamp"
            );
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - mu).abs() < 0.1, "mean {mean} too far from {mu}");
    }

    #[test]
    fn normal_zero_sigma_is_deterministic() {
        let mut r = SimRng::new(1);
        assert_eq!(r.normal(5.0, 0.0), 5.0);
        assert_eq!(r.normal(-5.0, 0.0), 0.0);
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut r = SimRng::new(2);
        let n = 20_000;
        let rate = 0.5;
        let mean: f64 = (0..n).map(|_| r.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean} should be near 2.0");
    }

    #[test]
    fn exp_matches_exponential_stream() {
        let mut a = SimRng::new(11);
        let mut b = SimRng::new(11);
        for _ in 0..32 {
            assert_eq!(a.exp(0.25).to_bits(), b.exponential(0.25).to_bits());
        }
    }

    #[test]
    fn poisson_small_mean_and_variance() {
        let mut r = SimRng::new(12);
        let n = 20_000;
        let lambda = 4.0;
        let samples: Vec<u64> = (0..n).map(|_| r.poisson(lambda)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
        // Poisson variance equals the mean.
        assert!((var - lambda).abs() < 0.25, "variance {var}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_tail() {
        let mut r = SimRng::new(13);
        let n = 5_000;
        let lambda = 200.0;
        let mean = (0..n).map(|_| r.poisson(lambda)).sum::<u64>() as f64 / n as f64;
        assert!((mean - lambda).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut r = SimRng::new(14);
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0)); // clamped
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = SimRng::new(4);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(r.choose(&items).unwrap()));

        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_range_degenerate() {
        let mut r = SimRng::new(5);
        assert_eq!(r.uniform_range(3.0, 3.0), 3.0);
    }
}
