//! Fixed-point simulated time.
//!
//! Simulated time is kept in integer microseconds so that event ordering is
//! exact and replayable. Floating-point seconds only appear at the edges
//! (cost models produce `f64` seconds; reports print `f64` seconds).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A non-negative span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant (used as an "infinity" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Creates an instant from floating-point seconds (rounded to the
    /// nearest microsecond; negative values clamp to zero).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_micros(secs))
    }

    /// Raw microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; elapsed time in the
    /// simulator is always non-negative by construction, so a violation is
    /// a logic error worth failing loudly on.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Creates a duration from floating-point seconds (rounded to the
    /// nearest microsecond; negative values clamp to zero).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_micros(secs))
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Hours as `f64` (used by the energy integrator, which reports Wh).
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by a non-negative factor, rounding to the
    /// nearest microsecond.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor >= 0.0, "duration factor must be non-negative");
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Divides the duration into `n` equal slices, rounding down.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn div_u64(self, n: u64) -> SimDuration {
        assert!(n > 0, "cannot divide duration by zero");
        SimDuration(self.0 / n)
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

fn secs_to_micros(secs: f64) -> u64 {
    if secs <= 0.0 || secs.is_nan() {
        return 0;
    }
    let micros = secs * MICROS_PER_SEC as f64;
    if micros >= u64::MAX as f64 {
        u64::MAX
    } else {
        micros.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(rhs.0 <= self.0, "duration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        self.div_u64(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrips_through_seconds() {
        let t = SimTime::from_secs_f64(283.125);
        assert_eq!(t.as_micros(), 283_125_000);
        assert!((t.as_secs_f64() - 283.125).abs() < 1e-9);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic_is_consistent() {
        let t0 = SimTime::from_secs(10);
        let d = SimDuration::from_secs(5);
        let t1 = t0 + d;
        assert_eq!(t1, SimTime::from_secs(15));
        assert_eq!(t1 - t0, d);
        assert_eq!(t1.duration_since(t0), d);
        assert_eq!(t0.saturating_duration_since(t1), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_reversed_order() {
        let _ = SimTime::from_secs(1).duration_since(SimTime::from_secs(2));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_millis(2_500));
        assert_eq!(d.div_u64(4), SimDuration::from_millis(2_500));
    }

    #[test]
    fn hours_conversion_matches_wh_math() {
        // 400 W for 90 s is 10 Wh.
        let d = SimDuration::from_secs(90);
        assert!((400.0 * d.as_hours_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_and_display() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(format!("{a}"), "1.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(1500)), "1.500s");
    }

    #[test]
    fn saturating_ops_do_not_wrap() {
        let big = SimDuration::from_micros(u64::MAX);
        assert_eq!(big + SimDuration::from_secs(1), SimDuration::MAX);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }
}
