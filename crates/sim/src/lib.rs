//! Deterministic discrete-event simulation substrate for Murakkab.
//!
//! Everything in the Murakkab reproduction runs on simulated time: the
//! cluster manager, the LLM serving engine, the agents and the runtime all
//! consume [`SimTime`] and schedule work through an [`EventQueue`]. The
//! substrate guarantees *determinism*: two runs with the same seed produce
//! bit-identical traces, which the benchmark harness and the integration
//! tests rely on.
//!
//! The crate provides:
//!
//! - [`time`]: [`SimTime`] and [`SimDuration`], fixed-point microsecond
//!   time arithmetic (no floating point drift in the event loop);
//! - [`queue`]: a deterministic [`EventQueue`] (ties broken by insertion
//!   sequence number);
//! - [`rng`]: [`SimRng`], a seeded, splittable random source;
//! - [`metrics`]: step-function [`TimeSeries`], counters and histograms for
//!   recording utilization and queueing behaviour;
//! - [`trace`]: span-oriented [`TraceLog`] with an ASCII timeline renderer
//!   used to regenerate the paper's Figure 3;
//! - [`ids`]: the [`define_id!`] macro for cheap typed identifiers.
//!
//! # Examples
//!
//! ```
//! use murakkab_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_secs_f64(1.0), "late");
//! q.schedule(SimTime::ZERO, "early");
//! assert_eq!(q.pop().unwrap().payload, "early");
//! assert_eq!(q.pop().unwrap().payload, "late");
//! ```

pub mod error;
pub mod ids;
pub mod metrics;
pub mod queue;
pub mod rng;
pub mod time;
pub mod trace;

pub use error::SimError;
pub use metrics::{Counter, Histogram, TimeSeries, UtilizationTracker};
pub use queue::{Event, EventQueue};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{Span, TraceLog};

/// Convenience result alias for simulation-layer fallible operations.
pub type Result<T> = std::result::Result<T, SimError>;
