//! Document question-answering: the scheduling side (Murakkab plans and
//! executes embed → retrieve → answer) combined with the functional side
//! (a real vector index returning the right document).
//!
//! ```text
//! cargo run --example doc_qa
//! ```

use murakkab::scenario::{CatalogRef, Scenario};
use murakkab_agents::vectordb::{embed_text, VectorIndex};

fn main() {
    // --- Functional substrate: index a small corpus. --------------------
    const DIMS: usize = 128;
    let corpus = [
        (
            "lease-2023",
            "office lease agreement with monthly rent and termination clauses",
        ),
        (
            "nda-vendor",
            "mutual non-disclosure agreement covering vendor trade secrets",
        ),
        (
            "msa-cloud",
            "master services agreement for cloud infrastructure capacity",
        ),
        (
            "sow-ml",
            "statement of work for the machine learning platform migration",
        ),
        (
            "dpa-eu",
            "data processing addendum for european customer records",
        ),
    ];
    let mut index = VectorIndex::new(DIMS);
    for (key, text) in corpus {
        index
            .insert(key, embed_text(text, DIMS))
            .expect("indexable");
    }

    // The stand-in embedding is lexical (character trigrams), not
    // semantic, so the question needs shared vocabulary with its target —
    // which retrieval questions naturally have.
    let question = "what are the monthly rent and termination terms of the office lease";
    let hits = index
        .query(&embed_text(question, DIMS), 2)
        .expect("query dims match");
    println!("question: {question}");
    println!(
        "retrieved: {} (score {:.3}), runner-up {}\n",
        hits[0].0, hits[0].1, hits[1].0
    );
    assert_eq!(hits[0].0, "lease-2023", "retrieval must find the lease");

    // --- Scheduling substrate: what that pipeline costs to run. ---------
    // The workload comes from the catalog by name, sized to the corpus.
    let scenario = Scenario::closed_loop("doc-qa")
        .seed(21)
        .catalog_entries(vec![CatalogRef::named("doc-qa").sized(corpus.len() as u32)]);
    let report = scenario.run().expect("doc-qa job runs");
    println!("{}", report.summary_line());
    println!(
        "\npipeline: {} embeddings -> vector query -> LLM answer",
        corpus.len()
    );
    println!(
        "{}",
        report
            .closed_loop()
            .expect("closed loop")
            .trace
            .render_ascii(72)
    );
}
