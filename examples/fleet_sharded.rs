//! Sharded fleet serving: the same overloaded arrival log served by 1,
//! 2 and 4 engine cells on the same 8-node cluster.
//!
//! One monolithic serve loop cannot grow past a single serving stack per
//! model, so extra nodes buy it little; partitioning the cluster into
//! cells (each with its own LLM endpoints and tool pools) turns the same
//! hardware into a horizontally scaled fleet. Arrivals are captured once
//! and replayed, so every shard count sees byte-identical traffic. The
//! traffic recipe (rate, front-door admission, in-flight budget) is the
//! `fleet` bench's shard-sweep scenario, shared via `murakkab_bench`.
//!
//! ```text
//! cargo run --example fleet_sharded
//! ```

use murakkab::scenario::Session;
use murakkab_bench::{shard_sweep_log, shard_sweep_scenario, FLEET_SHARD_RATE};

const SEED: u64 = 42;
const NODES: usize = 8;
const HORIZON_S: f64 = 300.0;

fn main() {
    // Capture the overloaded stream once; every shard count replays it.
    let log = shard_sweep_log(SEED, HORIZON_S);
    println!(
        "Sharded fleet serving (seed {SEED}, {} arrivals at {FLEET_SHARD_RATE} req/s over \
         {HORIZON_S}s, {NODES} nodes)\n",
        log.len()
    );

    let first = shard_sweep_scenario(SEED, &log, 1, HORIZON_S, NODES);
    let session = Session::new(&first).expect("session builds");
    let mut goodputs = Vec::new();
    for shards in [1usize, 2, 4] {
        let scenario = shard_sweep_scenario(SEED, &log, shards, HORIZON_S, NODES);
        let report = session
            .execute(&scenario)
            .expect("fleet serves")
            .into_open_loop()
            .expect("open-loop report");
        println!("{}", report.summary_line());
        println!("{}", report.cell_table());
        println!(
            "  steals: {}  |  router: {}  |  GPU {:.1}%  CPU {:.1}%\n",
            report.steals, report.router, report.gpu_util_avg_pct, report.cpu_util_avg_pct
        );
        goodputs.push((shards, report.goodput_per_min));
    }

    let (_, base) = goodputs[0];
    println!("Shard scaling at the overload point (goodput, deadline-met workflows/min):");
    for (shards, g) in goodputs {
        println!(
            "  shards={shards}: {g:6.2}/min  ({:.2}x)",
            g / base.max(1e-9)
        );
    }
}
