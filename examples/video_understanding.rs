//! The paper's §4 evaluation, end to end: the Video Understanding
//! workflow (OmAgent-derived) as the imperative baseline and under
//! Murakkab with all three Speech-to-Text configurations.
//!
//! ```text
//! cargo run --example video_understanding [seed]
//! ```

use murakkab::runtime::SttChoice;
use murakkab::scenario::{Scenario, Session};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    println!("Video Understanding (2 videos, 16 scenes, seed {seed})\n");

    // Listing 1: fixed models, fixed resources, fully sequential.
    let baseline = murakkab::run_baseline_video_understanding(seed).expect("baseline runs");
    println!("{}", baseline.summary_line());

    // Listing 2 on Murakkab: the same `paper-video` catalog workload as a
    // declarative scenario, one session across every STT variant.
    let base = Scenario::closed_loop("murakkab").seed(seed);
    let session = Session::new(&base).expect("session builds");
    let mut chosen = None;
    for (label, stt) in [
        ("murakkab (STT on CPU)", SttChoice::Cpu),
        ("murakkab (STT on GPU)", SttChoice::Gpu),
        ("murakkab (STT hybrid)", SttChoice::Hybrid),
        ("murakkab (auto = MIN_COST)", SttChoice::Auto),
    ] {
        let report = session
            .execute(&base.clone().labeled(label).stt(stt))
            .expect("murakkab runs")
            .into_closed_loop()
            .expect("closed-loop report");
        println!("{}", report.summary_line());
        if stt == SttChoice::Auto {
            chosen = Some(report);
        }
    }

    let chosen = chosen.expect("auto run executed");
    println!(
        "\nMurakkab under MIN_COST: {:.2}x speedup, {:.2}x energy efficiency vs baseline",
        chosen.speedup_vs(&baseline),
        chosen.energy_efficiency_vs(&baseline)
    );
    println!(
        "(paper reports ~3.4x and ~4.5x; orchestration overhead here is {:.1}% of the run)",
        100.0 * chosen.orchestration_fraction()
    );
}
