//! Capture/replay: execute the checked-in `scenarios/*.json` files.
//!
//! A `Scenario` is plain data, so a run configuration can be captured to
//! JSON once and replayed bit-identically later — the CGReplay-style
//! declare-once/re-run-identically workflow. This example loads every
//! scenario file, proves the serde round-trip is lossless, executes each
//! one, and checks the replay-identity digest on the first.
//!
//! ```text
//! cargo run --example scenario_replay            # load + execute + verify
//! cargo run --example scenario_replay -- --write # regenerate the files
//! ```

use std::path::PathBuf;

use murakkab::scenario::{Scenario, Session};
use murakkab::ServingMode;
use murakkab_traffic::ArrivalProcess;

/// The checked-in scenario set, in execution order: the paper testbed
/// closed loop, an overloaded open loop, and the disaggregation A/B pair
/// on a fixed 4-node cluster.
fn stock_scenarios() -> Vec<(&'static str, Scenario)> {
    let disagg_ab = |label: &str, mode: ServingMode| {
        Scenario::open_loop(label, ArrivalProcess::Poisson { rate_per_s: 0.4 }, 240.0)
            .seed(42)
            .cluster(murakkab_hardware::catalog::nd96amsr_a100_v4(), 4)
            .max_inflight(24)
            .serving(mode)
    };
    vec![
        (
            "paper_testbed_closed_loop.json",
            Scenario::closed_loop("paper-testbed").seed(42),
        ),
        (
            "overload_open_loop.json",
            Scenario::open_loop(
                "overload",
                ArrivalProcess::Poisson { rate_per_s: 0.5 },
                240.0,
            )
            .seed(42),
        ),
        (
            "disagg_ab_colocated.json",
            disagg_ab("disagg-ab-colocated", ServingMode::Colocated),
        ),
        (
            "disagg_ab_disaggregated.json",
            disagg_ab("disagg-ab-disaggregated", ServingMode::Disaggregated),
        ),
        (
            "geo_three_region.json",
            Scenario::open_loop(
                "geo-three-region",
                ArrivalProcess::Poisson { rate_per_s: 1.2 },
                240.0,
            )
            .seed(42)
            .cluster(murakkab_hardware::catalog::nd96amsr_a100_v4(), 24)
            .admission(murakkab_traffic::AdmissionConfig {
                rate_per_s: 1.5,
                max_queue: 48,
                ..Default::default()
            })
            .geo(
                murakkab::GeoSpec::three_region(6, 3, 2)
                    .day_s(600.0)
                    .sync_epoch_s(20.0),
            ),
        ),
    ]
}

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

fn main() {
    let dir = scenarios_dir();
    if std::env::args().any(|a| a == "--write") {
        std::fs::create_dir_all(&dir).expect("scenarios dir");
        for (file, scenario) in stock_scenarios() {
            let path = dir.join(file);
            std::fs::write(&path, scenario.to_json().expect("serializes"))
                .expect("scenario file writes");
            println!("wrote {}", path.display());
        }
        return;
    }

    println!("Replaying checked-in scenarios from {}\n", dir.display());
    for (i, (file, expected)) in stock_scenarios().into_iter().enumerate() {
        let path = dir.join(file);
        let scenario = Scenario::from_json_file(&path).expect("scenario file parses");
        assert_eq!(
            scenario, expected,
            "{file} drifted from the generator; rerun with --write"
        );
        // The serde round-trip is lossless: JSON -> Scenario -> JSON ->
        // Scenario lands on the identical spec.
        let reparsed =
            Scenario::from_json(&scenario.to_json().expect("serializes")).expect("reparses");
        assert_eq!(scenario, reparsed, "{file} must round-trip losslessly");

        let session = Session::new(&scenario).expect("session builds");
        let report = session.execute(&scenario).expect("scenario executes");
        println!("{:>32}  {}", file, report.summary_line());
        println!("{:>32}  digest {:016x}", "", report.digest());

        // Replay identity on the first (cheapest) scenario: executing the
        // same loaded spec again produces the bit-identical report.
        if i == 0 {
            let replay = session.execute(&scenario).expect("replay executes");
            assert_eq!(
                report.digest(),
                replay.digest(),
                "replaying {file} must be bit-identical"
            );
            println!("{:>32}  replay digest matches", "");
        }
    }
    println!("\nAll scenarios replayed; digests stable.");
}
