//! Cluster-manager mechanics on their own: placement, telemetry, spot
//! preemption, autoscaling and workflow-aware rebalancing — the §3.2
//! "Workflow-Aware Cluster Management" machinery without a workflow on
//! top.
//!
//! ```text
//! cargo run --example cluster_ops
//! ```

use std::collections::BTreeMap;

use murakkab_agents::Capability;
use murakkab_cluster::{
    rebalance::EndpointView, ClusterManager, PlacementPolicy, RebalanceAction, Rebalancer,
};
use murakkab_hardware::{catalog, EnergyScope, HardwareTarget, SpotTrace};
use murakkab_sim::{SimDuration, SimRng, SimTime};

fn main() {
    let t = SimTime::from_secs;

    // A cluster of two on-demand ND96 VMs plus one spot VM.
    let mut cm = ClusterManager::new(PlacementPolicy::BestFit);
    cm.add_node(catalog::nd96amsr_a100_v4());
    cm.add_node(catalog::nd96amsr_a100_v4());
    let spot_node = cm.add_node(catalog::nd96amsr_a100_v4().as_spot(0.3));
    println!("cluster: {:?}\n", cm.stats(t(0)));

    // Deploy an LLM endpoint and a whisper worker.
    let llm = cm
        .allocate(t(0), "nvlm-text", HardwareTarget::gpus(8))
        .expect("fits");
    let whisper = cm
        .allocate(t(0), "whisper", HardwareTarget::ONE_GPU)
        .expect("fits");
    cm.activity_start(t(0), llm, 0.35).expect("live");
    cm.activity_start(t(0), whisper, 0.65).expect("live");

    // A seeded spot-availability trace decides when the spot VM dies.
    let mut rng = SimRng::new(99);
    let trace = SpotTrace::generate(
        &mut rng,
        t(7200),
        SimDuration::from_secs(1800),
        SimDuration::from_secs(600),
    );
    let first_preempt = trace.events()[0].0;
    println!(
        "spot VM preempts at {first_preempt} (uptime over 2h: {})",
        trace.uptime(t(7200))
    );
    let killed = cm.preempt_node(first_preempt, spot_node).expect("was up");
    println!("allocations killed by preemption: {killed:?}");

    // The workflow-aware rebalancer: STT demand is gone, LLM is swamped.
    let upcoming = BTreeMap::from([(Capability::Summarization, 64usize)]);
    let endpoints = vec![
        EndpointView {
            label: "whisper".into(),
            capability: Capability::SpeechToText,
            gpus: 1.0,
            load: 0,
        },
        EndpointView {
            label: "nvlm-text".into(),
            capability: Capability::Summarization,
            gpus: 8.0,
            load: 48,
        },
    ];
    let plan = Rebalancer::default().plan(&cm.stats(first_preempt), &upcoming, &endpoints);
    println!("\nrebalancer plan (the paper's Whisper -> Llama example):");
    for action in &plan {
        match action {
            RebalanceAction::ReleaseIdle { label } => println!("  release idle agent {label}"),
            RebalanceAction::ScaleUp { label, add_gpus } => {
                println!("  scale up {label} by {add_gpus} GPU(s)")
            }
            RebalanceAction::Prewarm {
                capability,
                upcoming,
            } => println!("  prewarm {capability:?} for {upcoming} upcoming tasks"),
        }
    }

    // Autoscale a CPU shape to backfill, then settle the energy bill.
    let ready = cm.request_scale_out(first_preempt, catalog::cpu_only_f64s());
    cm.process_provisioning(ready);
    cm.activity_end(t(3600), llm, 0.35).expect("live");
    cm.activity_end(t(3600), whisper, 0.65).expect("live");
    println!(
        "\nGPU energy over the first hour: {:.1} Wh (allocated devices), {:.1} Wh (whole fleet)",
        cm.energy_wh(t(0), t(3600), EnergyScope::GpuOnly),
        cm.energy_wh_all(t(0), t(3600), EnergyScope::GpuOnly),
    );
    println!(
        "fleet cost for that hour: ${:.2}",
        cm.fleet_cost_usd(SimDuration::from_secs(3600))
    );
}
