//! Multi-region federated serving: the checked-in three-region
//! scenario, end to end.
//!
//! Loads `scenarios/geo_three_region.json` — three regions (us-east,
//! eu-west, ap-south) with staggered diurnal demand, a WAN RTT matrix,
//! and an elastic spot pool per region — runs it under two geo-routing
//! policies on the identical arrival stream and spot schedule, and
//! prints the per-region ledger: where requests originated, where they
//! were served, what the WAN transfer cost, and how much spot capacity
//! the predictive autoscaler bought ahead of each region's daybreak.
//!
//! ```text
//! cargo run --release --example geo_fleet
//! ```

use std::path::PathBuf;

use murakkab::scenario::{Scenario, Session};
use murakkab::{GeoPolicy, GeoReport};

fn scenario_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios/geo_three_region.json")
}

fn region_table(geo: &GeoReport) {
    println!(
        "  {:<10} {:>6} {:>7} {:>7} {:>5} {:>5} {:>8} {:>8} {:>8}",
        "region", "utc", "origin", "served", "out", "in", "WAN GB", "spot nh", "reclaims"
    );
    for r in &geo.regions {
        println!(
            "  {:<10} {:>+5.0}h {:>7} {:>7} {:>5} {:>5} {:>8.2} {:>8.2} {:>8}",
            r.region,
            r.utc_offset_h,
            r.origin_requests,
            r.served_requests,
            r.escaped_out,
            r.escaped_in,
            r.wan_egress_gb,
            r.spot_node_hours,
            r.spot_reclaims,
        );
    }
}

fn main() {
    let base = Scenario::from_json_file(scenario_path()).expect("checked-in scenario parses");
    println!(
        "Federated serving of {:?} under two geo-routing policies\n",
        scenario_path()
    );

    let mut results: Vec<(GeoPolicy, GeoReport)> = Vec::new();
    for policy in [GeoPolicy::NearestRegion, GeoPolicy::LatencyWeighted] {
        let mut scenario = base.clone().labeled(&format!("geo-{}", policy.tag()));
        scenario.geo = scenario.geo.map(|g| g.policy(policy));
        let session = Session::new(&scenario).expect("session builds");
        let report = session.execute(&scenario).expect("federated run serves");
        let geo = report.geo().expect("geo detail").clone();
        println!("{}", geo.summary_line());
        region_table(&geo);
        println!();
        results.push((policy, geo));
    }

    // Same arrivals, same predictive spot schedule — the policies differ
    // only in where requests are served, so the capacity bill matches
    // and the latency/WAN trade is the whole story.
    let (_, home) = &results[0];
    let (_, aware) = &results[1];
    assert!(
        (home.spot_node_hours - aware.spot_node_hours).abs() < 1e-9,
        "policy sweeps are equal-cost by construction"
    );
    println!(
        "equal spot capacity ({:.2} node-hours); worst-class TTFT p95: stay-home {:.2}s vs \
         latency-aware {:.2}s, {} requests crossed the WAN for {:.2} GB (${:.2})",
        home.spot_node_hours,
        home.worst_class_ttft_p95_s().unwrap_or(0.0),
        aware.worst_class_ttft_p95_s().unwrap_or(0.0),
        aware.cross_region_requests,
        aware.wan_egress_gb,
        aware.wan_egress_usd,
    );
}
