//! The §3.2 "Execution Paths" lever: chain-of-thought reasoning with 1-8
//! parallel paths and top-k voting. More paths buy quality with
//! diminishing returns, at roughly linear cost.
//!
//! ```text
//! cargo run --example cot_reasoning
//! ```

use murakkab::scenario::{CatalogRef, Scenario, Session};
use murakkab_orchestrator::paths::{path_cost_factor, path_quality};

fn main() {
    let base = Scenario::closed_loop("cot").seed(3);
    let session = Session::new(&base).expect("session builds");
    println!("Chain-of-thought: execution paths vs quality/cost\n");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>12}",
        "paths", "time (s)", "energy Wh", "cost $", "est.quality"
    );

    let mut prev_quality = 0.0;
    for k in [1u32, 2, 4, 8] {
        let scenario = base
            .clone()
            .labeled(&format!("cot-{k}"))
            .catalog_entries(vec![CatalogRef::named("cot").sized(k)]);
        let report = session.execute(&scenario).expect("cot job runs");
        let quality = path_quality(0.84, k);
        println!(
            "{k:>6} {:>10.1} {:>10.2} {:>10.3} {quality:>12.3}",
            report.core.makespan_s, report.core.energy_allocated_wh, report.core.cost_usd
        );
        assert!(quality > prev_quality, "quality must rise with paths");
        prev_quality = quality;
    }

    println!(
        "\nCost model: k paths cost ~{:.2}x a single path at k=4 (vote overhead included).",
        path_cost_factor(4)
    );
    println!("Quality gains diminish: the runtime stops adding paths once the");
    println!("constraint set's quality target is met (see ConfigSearch).");
}
