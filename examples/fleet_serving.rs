//! Fleet serving: open-loop traffic through the Murakkab runtime.
//!
//! Three tenants (interactive feeds, standard analytics, batch video)
//! submit requests on a Poisson clock past the cluster's comfortable
//! capacity; the admission controller gates them and the runtime serves
//! everything from one shared engine. The same overloaded stream is then
//! replayed without admission control to show why overload needs a gate.
//! Both runs are variants of one declarative open-loop `Scenario`.
//!
//! ```text
//! cargo run --example fleet_serving
//! ```

use murakkab::scenario::{Scenario, Session};
use murakkab_traffic::{AdmissionConfig, ArrivalProcess};

fn main() {
    // Past the knee: enough offered load that deadlines cannot all be met.
    let process = ArrivalProcess::Poisson { rate_per_s: 0.5 };
    let gated_scenario = Scenario::open_loop("gated", process, 400.0).seed(42);
    let session = Session::new(&gated_scenario).expect("session builds");

    let gated = session
        .execute(&gated_scenario)
        .expect("fleet serves")
        .into_open_loop()
        .expect("open-loop report");
    let open = session
        .execute(
            &gated_scenario
                .labeled("no-admission")
                .admission(AdmissionConfig::disabled()),
        )
        .expect("fleet serves")
        .into_open_loop()
        .expect("open-loop report");

    println!("Open-loop fleet serving (seed 42, Poisson 0.5 req/s, 400 s horizon)\n");
    for report in [&gated, &open] {
        println!("{}", report.summary_line());
        println!("{}", report.class_table());
        println!(
            "  rejections: {} rate / {} deadline / {} queue-full;  \
             autoscale: {} pool ups, {} downs;  rebalancer hints: {}\n",
            report.rejected_rate,
            report.rejected_deadline,
            report.rejected_queue_full,
            report.pool_scale_ups,
            report.pool_scale_downs,
            report.rebalance_actions,
        );
    }
    println!(
        "Admission control at this load: SLO attainment {:.1}% ({} rejected) vs {:.1}% without.",
        100.0 * gated.slo_attainment,
        gated.rejections(),
        100.0 * open.slo_attainment
    );
}
