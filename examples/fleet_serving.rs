//! Fleet serving: open-loop traffic through the Murakkab runtime.
//!
//! Three tenants (interactive feeds, standard analytics, batch video)
//! submit requests on a Poisson clock past the cluster's comfortable
//! capacity; the admission controller gates them and the runtime serves
//! everything from one shared engine. The same overloaded stream is then
//! replayed without admission control to show why overload needs a gate.
//!
//! ```text
//! cargo run --example fleet_serving
//! ```

use murakkab::fleet::FleetOptions;
use murakkab::Runtime;
use murakkab_traffic::{AdmissionConfig, ArrivalProcess};

fn main() {
    let rt = Runtime::paper_testbed(42);
    // Past the knee: enough offered load that deadlines cannot all be met.
    let process = ArrivalProcess::Poisson { rate_per_s: 0.5 };

    let gated = rt
        .serve(FleetOptions::open_loop("gated", process.clone(), 400.0))
        .expect("fleet serves");
    let open = rt
        .serve(
            FleetOptions::open_loop("no-admission", process, 400.0)
                .admission(AdmissionConfig::disabled()),
        )
        .expect("fleet serves");

    println!("Open-loop fleet serving (seed 42, Poisson 0.5 req/s, 400 s horizon)\n");
    for report in [&gated, &open] {
        println!("{}", report.summary_line());
        println!("{}", report.class_table());
        println!(
            "  rejections: {} rate / {} deadline / {} queue-full;  \
             autoscale: {} pool ups, {} downs;  rebalancer hints: {}\n",
            report.rejected_rate,
            report.rejected_deadline,
            report.rejected_queue_full,
            report.pool_scale_ups,
            report.pool_scale_downs,
            report.rebalance_actions,
        );
    }
    println!(
        "Admission control at this load: SLO attainment {:.1}% ({} rejected) vs {:.1}% without.",
        100.0 * gated.slo_attainment,
        gated.rejections(),
        100.0 * open.slo_attainment
    );
}
