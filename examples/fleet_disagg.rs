//! Pluggable serving backends: the same overloaded arrival log served
//! by a colocated continuous-batching replica and by a disaggregated
//! prefill/decode pair on the same cluster.
//!
//! Colocating both phases makes every admitted prompt's prefill a
//! head-of-line block on the shared iteration, so time-to-first-token
//! collapses under overload. Disaggregation runs prefill on its own TP
//! group, streams the KV cache to a decode instance over NVLink, and
//! admits into decode against only the decode footprint — TTFT then
//! tracks prefill capacity, not the decode backlog. Traffic and
//! admission come from the `disagg` bench's scenario (`murakkab_bench`),
//! so this example replays the exact configuration `BENCH_disagg.json`
//! was measured with.
//!
//! ```text
//! cargo run --example fleet_disagg
//! ```

use murakkab::scenario::Session;
use murakkab::ServingMode;
use murakkab_bench::{disagg_log, disagg_scenario, DISAGG_NODES, DISAGG_RATE};

const SEED: u64 = 42;
const HORIZON_S: f64 = 300.0;

fn main() {
    // Capture the overloaded stream once; both backends replay it.
    let log = disagg_log(SEED, HORIZON_S);
    println!(
        "Serving-backend comparison (seed {SEED}, {} arrivals at {DISAGG_RATE} req/s over \
         {HORIZON_S}s, {DISAGG_NODES} nodes)\n",
        log.len()
    );

    let first = disagg_scenario(SEED, &log, ServingMode::Colocated, HORIZON_S);
    let session = Session::new(&first).expect("session builds");
    let mut headline = Vec::new();
    for mode in [ServingMode::Colocated, ServingMode::Disaggregated] {
        let scenario = disagg_scenario(SEED, &log, mode, HORIZON_S);
        let report = session
            .execute(&scenario)
            .expect("fleet serves")
            .into_open_loop()
            .expect("open-loop report");
        println!("{}", report.summary_line());
        println!("{}", report.class_table());
        println!(
            "  phase util: prefill {:.1}%  decode {:.1}%  |  rejected {}\n",
            report.prefill_util_avg_pct,
            report.decode_util_avg_pct,
            report.rejections(),
        );
        headline.push((mode, report.goodput_per_min, report.worst_ttft_p95()));
    }

    println!("Backend comparison at the overload point:");
    for (mode, goodput, ttft) in headline {
        println!(
            "  {:<15} {goodput:6.2}/min goodput   worst-class TTFT p95 {ttft:6.2}s",
            mode.tag()
        );
    }
}
