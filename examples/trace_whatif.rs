//! Trace capture, replay and what-if: the checked-in trace artifacts.
//!
//! A `RunTrace` freezes one serve run — arrivals, admission verdicts,
//! cell assignments, first-token/completion instants — as a durable
//! JSON artifact. This example regenerates the two checked-in traces
//! (`tests/fixtures/trace_small.json`, `traces/overload_small.json`),
//! proves their replay digests, and runs a disaggregation what-if on
//! the overload trace.
//!
//! ```text
//! cargo run --release --example trace_whatif            # replay + what-if
//! cargo run --release --example trace_whatif -- --write # regenerate files
//! ```

use std::path::PathBuf;

use murakkab::{Scenario, ServingMode};
use murakkab_trace::{whatif, RunTrace, WhatIf};
use murakkab_traffic::ArrivalProcess;

/// The tiny fixture trace: a lightly loaded minute on the paper
/// testbed, small enough for test-time replay.
pub fn small_scenario() -> Scenario {
    Scenario::open_loop(
        "trace-small",
        ArrivalProcess::Poisson { rate_per_s: 0.08 },
        120.0,
    )
    .seed(42)
}

/// The example overload trace: the disaggregation A/B workload from
/// `scenarios/` (0.4 req/s on four nodes), captured with per-request
/// records.
pub fn overload_scenario() -> Scenario {
    Scenario::open_loop(
        "overload-small",
        ArrivalProcess::Poisson { rate_per_s: 0.4 },
        240.0,
    )
    .seed(42)
    .cluster(murakkab_hardware::catalog::nd96amsr_a100_v4(), 4)
    .max_inflight(24)
}

fn artifacts() -> Vec<(PathBuf, Scenario)> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    vec![
        (
            root.join("tests/fixtures/trace_small.json"),
            small_scenario(),
        ),
        (root.join("traces/overload_small.json"), overload_scenario()),
    ]
}

fn main() {
    if std::env::args().any(|a| a == "--write") {
        for (path, scenario) in artifacts() {
            std::fs::create_dir_all(path.parent().expect("artifact paths have parents"))
                .expect("artifact dir");
            let trace = RunTrace::capture(&scenario).expect("capture succeeds");
            trace.write_json_file(&path).expect("trace file writes");
            println!("wrote {}", path.display());
            println!("  {}", trace.summary_line());
        }
        return;
    }

    for (path, expected) in artifacts() {
        let trace = RunTrace::from_json_file(&path).expect("trace file parses");
        assert_eq!(
            trace.scenario,
            expected,
            "{} drifted from the generator; rerun with --write",
            path.display()
        );
        let report = trace.verify_replay().expect("replay is bit-identical");
        println!("{}", trace.summary_line());
        println!("  replay verified: {}", report.summary_line());
    }

    // The what-if: the captured overload traffic, served disaggregated.
    let trace = RunTrace::from_json_file(&artifacts()[1].0).expect("trace file parses");
    let report = whatif(
        &trace,
        &WhatIf::named("disagg").serving(ServingMode::Disaggregated),
    )
    .expect("what-if executes");
    println!("\n{}", report.diff.render_human());
    println!("{}", report.diff.summary_line());
}
