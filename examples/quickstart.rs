//! Quickstart: declare a scenario (Listing 2 style), execute it through
//! a session, and inspect the report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use murakkab::scenario::Scenario;
use murakkab_orchestrator::JobInputs;
use murakkab_workflow::{Constraint, Job};

fn main() {
    // 1. Declare WHAT you want, not HOW to run it: no model names, no API
    //    keys, no GPU counts (contrast with Listing 1 of the paper, which
    //    the `murakkab::baseline` module reproduces).
    let job = Job::describe("Generate social media newsfeed for Alice")
        .input("alice")
        .constraint(Constraint::QualityAtLeast(0.85))
        .constraint(Constraint::MinLatency)
        .build()
        .expect("valid job");

    // 2. A scenario binds the job (with concrete inputs: 12 candidate
    //    posts), the cluster and the execution mode into one declarative,
    //    JSON-serializable spec.
    let scenario = Scenario::closed_loop("quickstart")
        .seed(7)
        .jobs(vec![(job, JobInputs::items(12))])
        .pin_paper_agents(false);

    // 3. The session decomposes the job, picks agents and hardware from
    //    execution profiles under the constraints, and executes on the
    //    simulated two-VM testbed.
    let report = scenario.run().expect("job runs");
    let run = report.closed_loop().expect("closed-loop detail");

    println!("{}", report.summary_line());
    println!("\nAgent/hardware selections the orchestrator made:");
    for (capability, choice) in &run.selections {
        println!("  {capability:<18} -> {choice}");
    }
    println!("\nExecution timeline:");
    println!("{}", run.trace.render_ascii(80));
}
