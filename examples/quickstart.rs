//! Quickstart: declare a job (Listing 2 style), run it on the Murakkab
//! runtime, and inspect the report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use murakkab::runtime::{RunOptions, Runtime};
use murakkab_orchestrator::JobInputs;
use murakkab_workflow::{Constraint, Job};

fn main() {
    // 1. Declare WHAT you want, not HOW to run it: no model names, no API
    //    keys, no GPU counts (contrast with Listing 1 of the paper, which
    //    the `murakkab::baseline` module reproduces).
    let job = Job::describe("Generate social media newsfeed for Alice")
        .input("alice")
        .constraint(Constraint::QualityAtLeast(0.85))
        .constraint(Constraint::MinLatency)
        .build()
        .expect("valid job");

    // 2. Concrete inputs: 12 candidate posts for the feed.
    let inputs = JobInputs::items(12);

    // 3. The runtime decomposes the job, picks agents and hardware from
    //    execution profiles under the constraints, and executes on the
    //    simulated two-VM testbed.
    let rt = Runtime::paper_testbed(7);
    let report = rt
        .run_job(
            &job,
            &inputs,
            RunOptions::labeled("quickstart").pin_paper_agents(false),
        )
        .expect("job runs");

    println!("{}", report.summary_line());
    println!("\nAgent/hardware selections the orchestrator made:");
    for (capability, choice) in &report.selections {
        println!("  {capability:<18} -> {choice}");
    }
    println!("\nExecution timeline:");
    println!("{}", report.trace.render_ascii(80));
}
