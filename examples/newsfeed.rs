//! Figure 2's "Workflow B": generate a social-media newsfeed, showing how
//! the same declarative job adapts to different constraints — and how the
//! orchestrator multiplexes one LLM endpoint across summarisation and
//! composition.
//!
//! ```text
//! cargo run --example newsfeed
//! ```

use murakkab::runtime::{RunOptions, Runtime};
use murakkab_orchestrator::JobInputs;
use murakkab_workflow::{Constraint, Job};

fn run(rt: &Runtime, label: &str, constraints: &[Constraint]) {
    let mut builder = Job::describe("Generate social media newsfeed for Alice").input("alice");
    for &c in constraints {
        builder = builder.constraint(c);
    }
    let job = builder.build().expect("valid job");
    let report = rt
        .run_job(
            &job,
            &JobInputs::items(24),
            RunOptions::labeled(label).pin_paper_agents(false),
        )
        .expect("job runs");
    println!("{}", report.summary_line());
    for (capability, choice) in &report.selections {
        println!("    {capability:<18} -> {choice}");
    }
}

fn main() {
    let rt = Runtime::paper_testbed(11);
    println!("Newsfeed generation for Alice (24 candidate posts)\n");

    println!("-- MIN_LATENCY (quality >= 0.85):");
    run(
        &rt,
        "newsfeed/latency",
        &[Constraint::QualityAtLeast(0.85), Constraint::MinLatency],
    );

    println!("\n-- MIN_COST (quality >= 0.80): smaller models, CPU placements:");
    run(
        &rt,
        "newsfeed/cost",
        &[Constraint::QualityAtLeast(0.80), Constraint::MinCost],
    );

    println!("\n-- MAX_QUALITY: the orchestrator may pay for the external API:");
    run(&rt, "newsfeed/quality", &[Constraint::MaxQuality]);
}
