//! Figure 2's "Workflow B": generate a social-media newsfeed, showing how
//! the same declarative job adapts to different constraints — and how the
//! orchestrator multiplexes one LLM endpoint across summarisation and
//! composition.
//!
//! ```text
//! cargo run --example newsfeed
//! ```

use murakkab::scenario::{Scenario, Session};
use murakkab_orchestrator::JobInputs;
use murakkab_workflow::{Constraint, Job};

fn run(session: &Session, base: &Scenario, label: &str, constraints: &[Constraint]) {
    let mut builder = Job::describe("Generate social media newsfeed for Alice").input("alice");
    for &c in constraints {
        builder = builder.constraint(c);
    }
    let job = builder.build().expect("valid job");
    let scenario = base
        .clone()
        .labeled(label)
        .jobs(vec![(job, JobInputs::items(24))]);
    let report = session.execute(&scenario).expect("job runs");
    println!("{}", report.summary_line());
    for (capability, choice) in &report.closed_loop().expect("closed loop").selections {
        println!("    {capability:<18} -> {choice}");
    }
}

fn main() {
    // One session (library + profiles + testbed) executes every
    // constraint variant of the same declarative scenario.
    let base = Scenario::closed_loop("newsfeed")
        .seed(11)
        .pin_paper_agents(false);
    let session = Session::new(&base).expect("session builds");
    println!("Newsfeed generation for Alice (24 candidate posts)\n");

    println!("-- MIN_LATENCY (quality >= 0.85):");
    run(
        &session,
        &base,
        "newsfeed/latency",
        &[Constraint::QualityAtLeast(0.85), Constraint::MinLatency],
    );

    println!("\n-- MIN_COST (quality >= 0.80): smaller models, CPU placements:");
    run(
        &session,
        &base,
        "newsfeed/cost",
        &[Constraint::QualityAtLeast(0.80), Constraint::MinCost],
    );

    println!("\n-- MAX_QUALITY: the orchestrator may pay for the external API:");
    run(
        &session,
        &base,
        "newsfeed/quality",
        &[Constraint::MaxQuality],
    );
}
